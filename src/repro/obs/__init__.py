"""Unified cross-layer observability.

PR 1 instrumented the co-simulation kernel (``repro.cosim.trace`` /
``repro.cosim.metrics``); this package layers *on top of* it so every
other layer — the six partitioners, the sweep engine's worker
processes, the R32 profiler — reports where wall-clock and search
effort go:

* :mod:`repro.obs.spans` — hierarchical wall-clock span tracing
  (:class:`SpanTracer`) with nested spans, attributes, instant events,
  and lossless worker→parent merging with per-worker pid/tid lanes;
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON
  export (:func:`to_trace_events`), a bridge for kernel traces
  (:func:`kernel_trace_events`), and the structural schema validator
  (:func:`validate_trace_events`) CI runs on every smoke trace;
* :mod:`repro.obs.flame` — aligned-text flamegraph rendering
  (:func:`render_flamegraph`) for terminals;
* :mod:`repro.obs.live` — the flight recorder: periodic heartbeat /
  queue / generation samples from in-flight runs into a store table
  or JSONL file, plus the ``campaign_top`` status rendering;
* :mod:`repro.obs.postmortem` — crash post-mortems reconstructed from
  the flight recorder + the store's leases (:func:`post_mortem`);
* :class:`repro.partition.seeding.ProgressProbe` (re-exported here) —
  per-iteration convergence telemetry from every heuristic;
  :func:`convergence_sink` turns its records into span events live.

The whole package follows PR 1's zero-cost-when-disabled convention:
every producer guards with ``if <collector> is not None`` and an
unobserved run allocates nothing.

Quick tour::

    from repro.obs import ProgressProbe, SpanTracer, convergence_sink

    spans = SpanTracer()
    probe = ProgressProbe(sink=convergence_sink(spans))
    with spans.span("partition", heuristic="annealing"):
        simulated_annealing(problem, seed=1, probe=probe)
    spans.write_perfetto("trace.json")     # load in ui.perfetto.dev
    print(spans.flamegraph())
    print(probe.convergence_table("annealing"))
"""

from repro.obs.spans import Span, SpanEvent, SpanTracer
from repro.obs.perfetto import (
    REQUIRED_KEYS,
    kernel_trace_events,
    to_perfetto_json,
    to_trace_events,
    validate_trace_events,
)
from repro.obs.flame import fold_spans, render_flamegraph
from repro.obs.live import (
    DEFAULT_HEARTBEAT_S,
    JsonlRecorder,
    StoreRecorder,
    TelemetryEmitter,
    TelemetrySample,
    latest_by_owner,
    owner_throughput,
    read_samples,
    render_status,
)
from repro.obs.postmortem import PostMortem, post_mortem
from repro.partition.seeding import ProgressProbe, ProgressRecord


def convergence_sink(span_tracer: SpanTracer):
    """A :class:`ProgressProbe` sink that mirrors every convergence
    record as an instant span event (``converge:<algorithm>``), so
    heuristic trajectories appear on the merged Perfetto timeline."""
    def sink(record: ProgressRecord) -> None:
        span_tracer.event(
            f"converge:{record.algorithm}",
            iteration=record.iteration,
            cost=record.cost,
            best_cost=record.best_cost,
            accepted=record.accepted,
            **record.detail,
        )
    return sink


__all__ = [
    "Span",
    "SpanEvent",
    "SpanTracer",
    "REQUIRED_KEYS",
    "kernel_trace_events",
    "to_perfetto_json",
    "to_trace_events",
    "validate_trace_events",
    "fold_spans",
    "render_flamegraph",
    "DEFAULT_HEARTBEAT_S",
    "JsonlRecorder",
    "StoreRecorder",
    "TelemetryEmitter",
    "TelemetrySample",
    "latest_by_owner",
    "owner_throughput",
    "read_samples",
    "render_status",
    "PostMortem",
    "post_mortem",
    "ProgressProbe",
    "ProgressRecord",
    "convergence_sink",
]
