"""Live telemetry and the flight recorder.

Everything :mod:`repro.obs` produced so far is *post-hoc*: spans,
probes, and metrics are collected in memory and exported after the run
exits cleanly.  A SIGKILL'd, hung, or merely slow campaign is a black
box until it finishes.  This module is the other half — a **flight
recorder**: workers and drivers emit periodic, low-overhead telemetry
*samples* (heartbeats, queue depths, generation summaries) into a
durable sink while the run is still in flight, so a live status view
(``examples/campaign_top.py``) and a crash post-mortem
(:mod:`repro.obs.postmortem`) can reconstruct what every shard was
doing from the outside, at any instant, without the run's cooperation.

Two sinks, matched to the two execution modes:

* :class:`StoreRecorder` — samples land in the ``telemetry`` table of
  a :class:`~repro.campaign.store.CampaignStore`, next to the jobs
  they describe (``--store`` mode; one durable file holds results,
  queue, and black box);
* :class:`JsonlRecorder` — an append-only JSONL file, one sample per
  line, flushed per write (pool mode; a SIGKILL loses at most the
  half-written last line, which :func:`read_samples` tolerates).

Three invariants, enforced by test:

* **zero-cost when disabled** — every producer guards with
  ``if <emitter> is not None``; an unrecorded run constructs no
  telemetry object and allocates nothing in this module;
* **never in the results** — samples carry wall-clock and host
  identity by design, so they must never flow into fingerprints,
  records, or tables; results are byte-identical recorder on or off
  (pinned by differential tests);
* **low overhead when enabled** — emission is rate-limited by
  :class:`TelemetryEmitter` (one monotonic-clock compare on the hot
  path), bounded <3% by ``benchmarks/test_bench_telemetry.py``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

#: Schema version stamped into every sample.
TELEMETRY_VERSION = 1

#: Default heartbeat period (seconds) for shards and drivers.
DEFAULT_HEARTBEAT_S = 1.0

#: Well-known sample kinds.  ``heartbeat`` — periodic liveness +
#: progress from one worker/driver; ``queue`` — coordinator-side queue
#: depth and lease gauges; ``run`` — one-shot run start/finish marks;
#: ``generation`` — one explorer generation's selection summary.
SAMPLE_KINDS = ("heartbeat", "queue", "run", "generation")


@dataclass(slots=True)
class TelemetrySample:
    """One flight-recorder record.

    ``wall_time`` is ``time.time()`` (comparable across boxes, used
    for heartbeat-age liveness); ``mono_time`` is ``time.monotonic()``
    (immune to clock steps, used for throughput deltas within one
    owner's stream); ``seq`` is the emitter's own counter, so gaps
    betray lost samples.  ``data`` is the sample's free-form gauge
    dict — plain JSON, never result bytes.
    """

    kind: str
    owner: str
    role: str
    wall_time: float
    mono_time: float
    seq: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the on-disk/in-table layout)."""
        return {
            "version": TELEMETRY_VERSION,
            "kind": self.kind,
            "owner": self.owner,
            "role": self.role,
            "wall_time": self.wall_time,
            "mono_time": self.mono_time,
            "seq": self.seq,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TelemetrySample":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=doc["kind"], owner=doc["owner"], role=doc["role"],
            wall_time=doc["wall_time"], mono_time=doc["mono_time"],
            seq=doc["seq"], data=dict(doc.get("data", {})),
        )


class JsonlRecorder:
    """Append-only JSONL flight-recorder file (pool mode).

    Each sample is one ``json.dumps`` line, written and flushed
    atomically enough for a black box: the file is opened in append
    mode per process (reopened after a ``fork``, like the campaign
    store's connection), every record is a single ``write`` call, and
    a crash mid-write corrupts at most the final line — which
    :func:`read_samples` skips instead of raising.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self._fh_pid: Optional[int] = None

    def _file(self):
        pid = os.getpid()
        if self._fh is None or self._fh_pid != pid:
            self._fh = open(self.path, "a", encoding="utf-8")
            self._fh_pid = pid
        return self._fh

    def record(self, sample: TelemetrySample) -> None:
        """Append one sample and flush it to the OS."""
        fh = self._file()
        fh.write(json.dumps(sample.to_dict(), sort_keys=True) + "\n")
        fh.flush()

    def close(self) -> None:
        """Close this process's handle (reopens on next record)."""
        if self._fh is not None and self._fh_pid == os.getpid():
            self._fh.close()
        self._fh = None
        self._fh_pid = None


class StoreRecorder:
    """Samples land in a :class:`CampaignStore`'s ``telemetry`` table.

    The store's connection is already lazy per process, so one
    recorder object safely crosses a ``fork`` into shard processes.
    """

    def __init__(self, store) -> None:
        self.store = store

    def record(self, sample: TelemetrySample) -> None:
        """Insert one sample (its own small transaction)."""
        self.store.record_telemetry([sample.to_dict()])


def read_samples(path) -> List[TelemetrySample]:
    """Parse a :class:`JsonlRecorder` file, tolerating a torn tail.

    A run killed mid-write leaves a truncated final line; that line
    (and any other unparseable line) is skipped — the flight recorder
    must be readable precisely when the run died messily.
    """
    samples: List[TelemetrySample] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    samples.append(TelemetrySample.from_dict(doc))
                except (ValueError, KeyError, TypeError):
                    continue  # torn/garbled line: skip, don't raise
    except FileNotFoundError:
        return []
    return samples


class TelemetryEmitter:
    """Rate-limited sample emission for one owner.

    The hot-path cost of an armed emitter is one monotonic-clock read
    and one compare (:meth:`heartbeat` returning ``False``); the first
    heartbeat fires immediately so even a short-lived worker leaves a
    trace.  Callers that need a guaranteed sample (run start/finish,
    generation marks, last words before exit) use :meth:`emit` or
    ``heartbeat(force=True)``.
    """

    def __init__(
        self,
        recorder,
        owner: Optional[str] = None,
        role: str = "run",
        interval_s: float = DEFAULT_HEARTBEAT_S,
        clock=time.monotonic,
        wall=time.time,
    ) -> None:
        self.recorder = recorder
        self.owner = owner if owner is not None else f"pid:{os.getpid()}"
        self.role = role
        self.interval_s = float(interval_s)
        self._clock = clock
        self._wall = wall
        self._seq = 0
        self._next = self._clock()  # first heartbeat emits immediately

    def emit(self, kind: str, **data: Any) -> TelemetrySample:
        """Record one sample unconditionally."""
        sample = TelemetrySample(
            kind=kind, owner=self.owner, role=self.role,
            wall_time=self._wall(), mono_time=self._clock(),
            seq=self._seq, data=data,
        )
        self._seq += 1
        self.recorder.record(sample)
        return sample

    def heartbeat(self, force: bool = False, **data: Any) -> bool:
        """Emit a ``heartbeat`` sample if the interval has elapsed.

        Returns whether a sample was recorded — ``False`` costs one
        clock read and one compare, which is the whole enabled-path
        overhead between emissions.
        """
        now = self._clock()
        if not force and now < self._next:
            return False
        self._next = now + self.interval_s
        self.emit("heartbeat", **data)
        return True


# ----------------------------------------------------------------------
# status rendering (campaign_top / obs_report --live)
# ----------------------------------------------------------------------
def latest_by_owner(
    samples: Iterable[TelemetrySample], kind: str = "heartbeat"
) -> Dict[str, TelemetrySample]:
    """The newest sample of ``kind`` per owner (stream order wins)."""
    latest: Dict[str, TelemetrySample] = {}
    for sample in samples:
        if sample.kind == kind:
            latest[sample.owner] = sample
    return latest


def owner_throughput(
    samples: Iterable[TelemetrySample], owner: str
) -> Optional[float]:
    """Cells/second from the owner's first → last heartbeat.

    Uses the cumulative ``done`` gauge against the monotonic clock, so
    wall-clock steps can't produce negative rates.  ``None`` when the
    stream is too short to measure.
    """
    stream = [s for s in samples
              if s.owner == owner and s.kind == "heartbeat"
              and "done" in s.data]
    if len(stream) < 2:
        return None
    first, last = stream[0], stream[-1]
    dt = last.mono_time - first.mono_time
    if dt <= 0:
        return None
    return (last.data["done"] - first.data["done"]) / dt


def render_status(
    samples: List[TelemetrySample],
    queue_counts: Optional[Dict[str, int]] = None,
    dead_owners: Iterable[str] = (),
    now_wall: Optional[float] = None,
    title: str = "campaign status",
) -> str:
    """One ``top``-style text frame from the latest samples.

    Per owner: role, heartbeat age, cumulative progress gauges, and
    measured throughput; a footer adds queue depths and an ETA
    (remaining runnable work over the summed live throughput) when a
    store's ``queue_counts`` are available.
    """
    now = time.time() if now_wall is None else now_wall
    dead = set(dead_owners)
    beats = latest_by_owner(samples)
    lines = [f"{title}  ({len(samples)} samples, "
             f"{len(beats)} owner(s))"]
    header = (f"  {'owner':<12} {'role':<12} {'age':>6} {'done':>6} "
              f"{'rate':>9}  state")
    lines.append(header)
    total_rate = 0.0
    for owner in sorted(beats):
        sample = beats[owner]
        age = now - sample.wall_time
        done = sample.data.get("done", "-")
        rate = owner_throughput(samples, owner)
        if rate is not None:
            total_rate += rate
        state = "DEAD" if owner in dead else (
            "exited" if sample.data.get("exiting") else "live")
        lines.append(
            f"  {owner:<12} {sample.role:<12} {age:>5.1f}s {done!s:>6} "
            f"{(f'{rate:.2f}/s' if rate is not None else '-'):>9}  "
            f"{state}"
        )
    queues = latest_by_owner(samples, kind="queue")
    if queue_counts is None and queues:
        newest = max(queues.values(), key=lambda s: s.mono_time)
        queue_counts = {
            k: v for k, v in newest.data.items()
            if isinstance(v, int)
        }
    if queue_counts:
        counts = "  ".join(
            f"{state}={queue_counts[state]}"
            for state in sorted(queue_counts)
        )
        lines.append(f"  queue: {counts}")
        remaining = (queue_counts.get("pending", 0)
                     + queue_counts.get("leased", 0))
        if remaining and total_rate > 0:
            lines.append(
                f"  eta: ~{remaining / total_rate:.1f}s "
                f"({remaining} cell(s) at {total_rate:.2f}/s)"
            )
    gens = [s for s in samples if s.kind == "generation"]
    if gens:
        g = gens[-1]
        lines.append(
            f"  explore: generation {g.data.get('generation')} "
            f"front={g.data.get('front_size')} "
            f"hv={g.data.get('hypervolume', 0.0):.4f}"
        )
    return "\n".join(lines)
