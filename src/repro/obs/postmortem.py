"""Crash post-mortems from the flight recorder.

After a SIGKILL, a crash, or a hang, the run itself can't tell you
what it was doing — but the flight recorder (:mod:`repro.obs.live`)
and the campaign store's queue can.  :func:`post_mortem` reconstructs
the run's last known state from the outside:

* the **final heartbeat per owner** and a liveness verdict for each —
  ``exited`` (said goodbye), ``dead`` (its pid is gone), ``hung``
  (alive or unknowable, but silent past the heartbeat timeout), or
  ``live``;
* the **uncommitted leases** still stamped in the store's queue — the
  exact cells that were claimed but never committed — and the subset
  held by dead/hung owners (the *suspect cells*, the ones most likely
  mid-compute at the moment of death);
* permanently **failed cells** with their last error;
* whatever **spans** were flushed, including still-open ones via the
  Perfetto exporter's ``unfinished`` mode.

The result renders as JSON (machines) or markdown (incident notes).
Everything here is read-only: a post-mortem never mutates the store,
so it is safe to run against a campaign that is still in flight — in
which case it is simply a status report with verdicts.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.live import (
    DEFAULT_HEARTBEAT_S,
    TelemetrySample,
    latest_by_owner,
    owner_throughput,
)

#: Without a store (whose ``heartbeat_timeout_s`` wins), an owner
#: silent this long is presumed hung.
DEFAULT_SILENCE_TIMEOUT_S = 10.0 * DEFAULT_HEARTBEAT_S

#: Owners embed their pid as a trailing integer (``pid:123``,
#: ``coord:123``, ``explore:123``).
_OWNER_PID = re.compile(r"(?:^|:)(\d+)$")


def owner_pid(owner: str) -> Optional[int]:
    """The pid embedded in an owner name, if any."""
    match = _OWNER_PID.search(owner)
    return int(match.group(1)) if match else None


@dataclass
class PostMortem:
    """One reconstructed last-known state (see :func:`post_mortem`)."""

    generated_at: float
    owners: List[Dict[str, Any]] = field(default_factory=list)
    uncommitted: List[Dict[str, Any]] = field(default_factory=list)
    suspects: List[str] = field(default_factory=list)
    failed: List[Dict[str, str]] = field(default_factory=list)
    queue: Optional[Dict[str, int]] = None
    last_generation: Optional[Dict[str, Any]] = None
    unfinished_spans: List[Dict[str, Any]] = field(default_factory=list)
    samples: int = 0

    def dead_owners(self) -> List[str]:
        """Owners whose verdict is ``dead`` or ``hung``, sorted."""
        return sorted(
            o["owner"] for o in self.owners
            if o["verdict"] in ("dead", "hung")
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the machine-readable report)."""
        return {
            "generated_at": self.generated_at,
            "owners": self.owners,
            "uncommitted": self.uncommitted,
            "suspects": self.suspects,
            "failed": self.failed,
            "queue": self.queue,
            "last_generation": self.last_generation,
            "unfinished_spans": self.unfinished_spans,
            "samples": self.samples,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          indent=indent)

    def to_markdown(self) -> str:
        """The incident-note rendering of the report."""
        lines = ["# campaign post-mortem", ""]
        lines.append(f"- flight-recorder samples: {self.samples}")
        if self.queue is not None:
            counts = "  ".join(f"{state}={n}" for state, n
                               in sorted(self.queue.items()))
            lines.append(f"- queue: {counts}")
        dead = self.dead_owners()
        if dead:
            lines.append(f"- dead/hung owner(s): {', '.join(dead)}")
        lines.append("")
        lines.append("## owners (last heartbeat each)")
        lines.append("")
        if self.owners:
            for o in self.owners:
                beat = o.get("last_heartbeat")
                detail = ("never heartbeat" if beat is None else
                          f"seq={beat['seq']} age={o['age_s']:.1f}s "
                          f"data={json.dumps(beat['data'], sort_keys=True)}")
                lines.append(
                    f"- `{o['owner']}` ({o['role']}) — "
                    f"**{o['verdict']}** — {detail}"
                )
        else:
            lines.append("- (no telemetry recorded)")
        lines.append("")
        lines.append("## uncommitted leases")
        lines.append("")
        if self.uncommitted:
            for lease in self.uncommitted:
                suspect = (" **suspect**"
                           if lease["fingerprint"] in self.suspects
                           else "")
                lines.append(
                    f"- `{lease['fingerprint']}` held by "
                    f"`{lease['owner']}` (attempts={lease['attempts']})"
                    f"{suspect}"
                )
        else:
            lines.append("- none — every claimed cell was committed")
        if self.failed:
            lines.append("")
            lines.append("## permanently failed cells")
            lines.append("")
            for f in self.failed:
                lines.append(
                    f"- `{f['fingerprint']}`: {f['error']}")
        if self.last_generation is not None:
            lines.append("")
            g = self.last_generation
            lines.append(
                f"## explorer: last generation "
                f"{g.get('generation')} (front={g.get('front_size')}, "
                f"hv={g.get('hypervolume')})"
            )
        if self.unfinished_spans:
            lines.append("")
            lines.append("## spans still open at dump time")
            lines.append("")
            for span in self.unfinished_spans:
                lines.append(
                    f"- `{span['name']}` "
                    f"(pid {span['pid']}, depth {span['depth']})")
        return "\n".join(lines) + "\n"


def post_mortem(
    store=None,
    samples: Optional[List[TelemetrySample]] = None,
    span_tracer=None,
    now_wall: Optional[float] = None,
    silence_timeout_s: Optional[float] = None,
    pid_alive=None,
) -> PostMortem:
    """Reconstruct a run's last known state from its black boxes.

    ``store`` supplies the telemetry table, queue counts, leases, and
    failures; ``samples`` (from :func:`repro.obs.live.read_samples`)
    supplies a JSONL flight recorder instead of — or in addition to —
    the store's table; ``span_tracer`` contributes its still-open
    spans.  All sources are optional and read-only.

    ``pid_alive`` is injectable for tests; the default is the store
    module's same-box liveness probe.
    """
    from repro.campaign.store import _pid_alive

    alive = pid_alive if pid_alive is not None else _pid_alive
    now = time.time() if now_wall is None else now_wall
    all_samples: List[TelemetrySample] = []
    if store is not None:
        all_samples.extend(
            TelemetrySample.from_dict(doc) for doc in store.telemetry()
        )
    if samples is not None:
        all_samples.extend(samples)

    timeout = silence_timeout_s
    if timeout is None:
        timeout = (store.heartbeat_timeout_s if store is not None
                   else DEFAULT_SILENCE_TIMEOUT_S)

    report = PostMortem(generated_at=now, samples=len(all_samples))

    beats = latest_by_owner(all_samples)
    for owner in sorted(beats):
        sample = beats[owner]
        age = now - sample.wall_time
        pid = owner_pid(owner)
        if sample.data.get("exiting"):
            verdict = "exited"
        elif pid is not None and not alive(pid):
            verdict = "dead"
        elif age > timeout:
            verdict = "hung"
        else:
            verdict = "live"
        report.owners.append({
            "owner": owner,
            "role": sample.role,
            "verdict": verdict,
            "age_s": age,
            "pid": pid,
            "throughput": owner_throughput(all_samples, owner),
            "last_heartbeat": sample.to_dict(),
        })

    gens = [s for s in all_samples if s.kind == "generation"]
    if gens:
        report.last_generation = dict(gens[-1].data)

    if store is not None:
        report.queue = store.queue_counts()
        verdicts = {o["owner"]: o["verdict"] for o in report.owners}
        for fp, owner, deadline, attempts in store.leased_jobs():
            report.uncommitted.append({
                "fingerprint": fp,
                "owner": owner,
                "lease_deadline": deadline,
                "attempts": attempts,
            })
            # a lease whose holder said goodbye, died, or went silent
            # is a suspect cell: claimed, never committed, and nobody
            # is coming back for it
            pid = owner_pid(owner)
            verdict = verdicts.get(owner)
            holder_gone = (
                verdict in ("dead", "hung", "exited")
                or (verdict is None and pid is not None
                    and not alive(pid))
            )
            if holder_gone:
                report.suspects.append(fp)
        report.failed = [
            {"fingerprint": fp, "error": error}
            for fp, error in store.failed_jobs()
        ]

    if span_tracer is not None:
        report.unfinished_spans = [
            span.to_dict() for span in span_tracer.open_spans
        ]
    return report
