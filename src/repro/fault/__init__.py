"""Fault injection and dependability evaluation for the co-simulation.

The paper's Section 3 argument — that a mixed hardware/software design
is only as good as the interfaces binding the two sides — cuts both
ways: those interfaces are also where transient faults do their damage.
This package measures that, DAVOS/SBFI style:

* :mod:`repro.fault.spec` — :class:`FaultSpec`, the deterministic,
  fingerprinted description of one fault, plus the seeded stratified
  sampler over a scenario's target space;
* :mod:`repro.fault.inject` — :class:`FaultInjector`, arming specs
  against a live :class:`System` (signal/register bit-flips, CPU state
  corruption, message-boundary faults, timing faults);
* :mod:`repro.fault.scenarios` — the deterministic campaign workloads
  (``coproc``: full R32 + MAC + FIFO stack; ``msgpipe``: message rung
  only; ``swmac``: CPU-only, batchable) and :func:`run_scenario`,
  plus :func:`run_sw_batch` / :func:`run_sw_sweep`, the vectorized
  many-lane drivers for software-only scenarios (DESIGN §14);
* :mod:`repro.fault.campaign` — :func:`run_campaign`: golden-vs-faulty
  fan-out over :func:`repro.sweep.engine.pool_map`, outcome
  classification (masked / sdc / detected / hang / crash), and the
  dependability report.

Quick tour::

    from repro.fault import SCENARIOS, run_campaign, sample_faults

    targets = SCENARIOS["coproc"].targets
    faults = sample_faults(targets, n=40, seed=7)
    result = run_campaign("coproc", faults, workers=4)
    print(result.dependability_table())
"""

from repro.fault.spec import (
    CPU_FLAGS,
    FAULT_VERSION,
    KINDS,
    OUTCOMES,
    FaultSpec,
    FaultSpecError,
    sample_faults,
)
from repro.fault.inject import (
    FaultInjector,
    InjectionError,
    System,
    arm_fault,
)
from repro.fault.scenarios import (
    DEFAULT_WATCHDOG,
    SCENARIOS,
    Scenario,
    SoftwareWorkload,
    run_scenario,
    run_sw_batch,
    run_sw_scenario,
    run_sw_sweep,
)
from repro.fault.campaign import (
    CampaignError,
    CampaignResult,
    CampaignStats,
    cell_fingerprint,
    classify,
    run_campaign,
    run_fault_cell,
    run_fault_cell_observed,
)

__all__ = [
    "CPU_FLAGS",
    "FAULT_VERSION",
    "KINDS",
    "OUTCOMES",
    "FaultSpec",
    "FaultSpecError",
    "sample_faults",
    "FaultInjector",
    "InjectionError",
    "System",
    "arm_fault",
    "DEFAULT_WATCHDOG",
    "SCENARIOS",
    "Scenario",
    "SoftwareWorkload",
    "run_scenario",
    "run_sw_batch",
    "run_sw_scenario",
    "run_sw_sweep",
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "cell_fingerprint",
    "classify",
    "run_campaign",
    "run_fault_cell",
    "run_fault_cell_observed",
]
