"""Fault specifications: what to break, where, and when.

A :class:`FaultSpec` is one fully-determined fault — a frozen,
JSON-serializable value with a stable SHA-256 fingerprint, exactly like
:class:`repro.sweep.config.SweepConfig` is for sweep cells.  The
fingerprint keys the campaign's on-disk result cache and derives
nothing from wall-clock, host, or worker identity, so a campaign is
reproducible at any worker count.

Fault kinds span the co-simulation stack's four injection surfaces
(mirroring the SBFI fault dictionaries of DAVOS-style campaigns):

========================  ============================================
kind                      effect
========================  ============================================
``signal_flip``           flip one bit of a :class:`cosim.signals.Signal`
                          value at model time ``time``
``reg_flip``              flip one bit of register ``index`` of a
                          mapped device (``.regs`` file) at ``time``
``cpu_reg_flip``          flip one bit of architectural register
                          ``index`` after ``count`` retired instructions
``cpu_pc_flip``           flip one bit of the program counter after
                          ``count`` retired instructions
``cpu_flag_flip``         invert one CPU control flag (``flag`` in
                          ``irq_enabled`` / ``irq_pending`` /
                          ``halted``) after ``count`` instructions
``msg_drop``              message ``index`` on channel ``target``
                          vanishes in transport
``msg_dup``               message ``index`` is delivered twice
``msg_delay``             message ``index`` is delayed ``delay`` ns
``msg_reorder``           messages ``index`` and ``index``+1 swap order
``msg_corrupt``           flip bit ``bit`` of message ``index``'s payload
``proc_spin``             a saboteur process enters a zero-delay spin
                          at ``time`` (timing fault; the kernel
                          watchdog must catch it)
========================  ============================================
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Bump when a field's meaning (or the outcome-record schema) changes:
#: old cache entries then read as misses instead of lying.
FAULT_VERSION = 1

#: Every fault kind the injector understands, by injection surface.
SIGNAL_KINDS = ("signal_flip",)
REGISTER_KINDS = ("reg_flip",)
CPU_KINDS = ("cpu_reg_flip", "cpu_pc_flip", "cpu_flag_flip")
MESSAGE_KINDS = (
    "msg_drop", "msg_dup", "msg_delay", "msg_reorder", "msg_corrupt",
)
TIMING_KINDS = ("proc_spin",)
KINDS = (
    SIGNAL_KINDS + REGISTER_KINDS + CPU_KINDS + MESSAGE_KINDS
    + TIMING_KINDS
)

#: CPU control flags addressable by ``cpu_flag_flip``.
CPU_FLAGS = ("irq_enabled", "irq_pending", "halted")

#: The five mutually exclusive outcome classes a campaign assigns
#: (see :func:`repro.fault.campaign.classify` for the precedence).
OUTCOMES = ("masked", "sdc", "detected", "hang", "crash")

#: Kinds triggered by model time (vs instruction count / message index).
TIMED_KINDS = SIGNAL_KINDS + REGISTER_KINDS + TIMING_KINDS


class FaultSpecError(ValueError):
    """Raised for a malformed or internally inconsistent fault spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One fully-specified fault.

    Field use depends on ``kind`` (see the module table); unused fields
    must stay at their defaults so equal faults always serialize — and
    therefore fingerprint — identically.
    """

    kind: str
    target: str          # signal / device / channel / saboteur label
    index: int = 0       # register number / message ordinal
    bit: int = 0         # bit to flip, for *_flip / msg_corrupt
    time: float = 0.0    # model time, for time-triggered kinds
    count: int = 0       # retired-instruction trigger, for cpu_* kinds
    delay: float = 0.0   # extra latency, for msg_delay
    flag: str = ""       # cpu_flag_flip: which flag

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; known: {list(KINDS)}"
            )
        if not self.target:
            raise FaultSpecError(f"{self.kind}: target must be non-empty")
        if self.index < 0:
            raise FaultSpecError(f"{self.kind}: index must be >= 0")
        if not 0 <= self.bit < 32:
            raise FaultSpecError(f"{self.kind}: bit must be in [0, 32)")
        if self.time < 0:
            raise FaultSpecError(f"{self.kind}: time must be >= 0")
        if self.count < 0:
            raise FaultSpecError(f"{self.kind}: count must be >= 0")
        if self.kind == "msg_delay" and self.delay <= 0:
            raise FaultSpecError("msg_delay: delay must be positive")
        if self.kind != "msg_delay" and self.delay != 0.0:
            raise FaultSpecError(f"{self.kind}: delay must stay 0")
        if self.kind == "cpu_flag_flip":
            if self.flag not in CPU_FLAGS:
                raise FaultSpecError(
                    f"cpu_flag_flip: flag must be one of {list(CPU_FLAGS)}"
                )
        elif self.flag:
            raise FaultSpecError(f"{self.kind}: flag must stay empty")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Field-ordered plain-dict form (JSON-serializable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultSpecError(
                f"unknown fault fields: {sorted(unknown)}"
            )
        return cls(**data)

    def canonical_json(self) -> str:
        """The canonical serialized form everything else hashes."""
        return json.dumps(
            {"version": FAULT_VERSION, **self.to_dict()},
            sort_keys=True, separators=(",", ":"),
        )

    @property
    def fingerprint(self) -> str:
        """Stable hex digest of the spec (a campaign cache-key part)."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    def describe(self) -> str:
        """A one-line human description for tables and span labels."""
        if self.kind in SIGNAL_KINDS:
            return f"{self.kind} {self.target} bit{self.bit} @t={self.time:g}"
        if self.kind in REGISTER_KINDS:
            return (f"{self.kind} {self.target}[{self.index}] "
                    f"bit{self.bit} @t={self.time:g}")
        if self.kind == "cpu_reg_flip":
            return f"{self.kind} r{self.index} bit{self.bit} @n={self.count}"
        if self.kind == "cpu_pc_flip":
            return f"{self.kind} bit{self.bit} @n={self.count}"
        if self.kind == "cpu_flag_flip":
            return f"{self.kind} {self.flag} @n={self.count}"
        if self.kind == "msg_delay":
            return (f"{self.kind} {self.target}#{self.index} "
                    f"+{self.delay:g}ns")
        if self.kind == "msg_corrupt":
            return f"{self.kind} {self.target}#{self.index} bit{self.bit}"
        if self.kind in MESSAGE_KINDS:
            return f"{self.kind} {self.target}#{self.index}"
        return f"{self.kind} {self.target} @t={self.time:g}"


# ----------------------------------------------------------------------
# seeded fault-space sampling
# ----------------------------------------------------------------------
def sample_faults(
    targets: Dict[str, Any],
    n: int,
    seed: int = 0,
    kinds: Optional[Sequence[str]] = None,
) -> List[FaultSpec]:
    """Draw ``n`` faults from a scenario's declared target space.

    ``targets`` is the scenario's :attr:`Scenario.targets` description::

        {
          "signals":  ["enable", "clk"],
          "devices":  {"mac": 4},          # name -> register count
          "channels": {"out": 4},          # name -> message count
          "cpu":      {"regs": 16, "max_count": 300},  # optional
          "time":     (0.0, 3000.0),
          "data_bits": 16,                 # payload width to flip within
          "kinds":    ["cpu_reg_flip"],    # optional kind restriction
        }

    Sampling is *stratified*: kinds are visited round-robin so even a
    small campaign touches every injection surface, with per-fault
    parameters drawn from ``random.Random(seed)`` — the same seed
    always yields the same fault list, on any host.  Kinds whose
    surface the scenario lacks (no CPU, no devices, ...) are skipped.
    """
    if n < 0:
        raise FaultSpecError("n must be >= 0")
    rng = random.Random(seed)
    lo, hi = targets.get("time", (0.0, 1000.0))
    data_bits = int(targets.get("data_bits", 16))
    signals = list(targets.get("signals", ()))
    devices = dict(targets.get("devices", {}))
    channels = dict(targets.get("channels", {}))
    cpu = targets.get("cpu")
    available: List[str] = []
    if kinds is None:
        kinds = targets.get("kinds", KINDS)
    for kind in kinds:
        if kind not in KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r}")
        if kind in SIGNAL_KINDS and not signals:
            continue
        if kind in REGISTER_KINDS and not devices:
            continue
        if kind in CPU_KINDS and not cpu:
            continue
        if kind in MESSAGE_KINDS and not channels:
            continue
        available.append(kind)
    if n and not available:
        raise FaultSpecError(
            "no applicable fault kinds for the given target space"
        )

    def draw_time() -> float:
        return round(rng.uniform(lo, hi), 1)

    out: List[FaultSpec] = []
    for i in range(n):
        kind = available[i % len(available)]
        if kind == "signal_flip":
            out.append(FaultSpec(
                kind=kind, target=rng.choice(signals),
                bit=rng.randrange(data_bits), time=draw_time(),
            ))
        elif kind == "reg_flip":
            device = rng.choice(sorted(devices))
            out.append(FaultSpec(
                kind=kind, target=device,
                index=rng.randrange(devices[device]),
                bit=rng.randrange(data_bits), time=draw_time(),
            ))
        elif kind == "cpu_reg_flip":
            out.append(FaultSpec(
                kind=kind, target="cpu",
                index=rng.randrange(1, cpu["regs"]),
                bit=rng.randrange(data_bits),
                count=rng.randrange(1, cpu["max_count"]),
            ))
        elif kind == "cpu_pc_flip":
            out.append(FaultSpec(
                kind=kind, target="cpu",
                bit=rng.randrange(cpu.get("pc_bits", 12)),
                count=rng.randrange(1, cpu["max_count"]),
            ))
        elif kind == "cpu_flag_flip":
            out.append(FaultSpec(
                kind=kind, target="cpu", flag=rng.choice(CPU_FLAGS),
                count=rng.randrange(1, cpu["max_count"]),
            ))
        elif kind in MESSAGE_KINDS:
            channel = rng.choice(sorted(channels))
            top = max(1, channels[channel])
            index = rng.randrange(
                top - 1 if kind == "msg_reorder" and top > 1 else top
            )
            extra: Dict[str, Any] = {}
            if kind == "msg_delay":
                extra["delay"] = round(rng.uniform(5.0, 200.0), 1)
            if kind == "msg_corrupt":
                extra["bit"] = rng.randrange(data_bits)
            out.append(FaultSpec(
                kind=kind, target=channel, index=index, **extra,
            ))
        else:  # proc_spin
            out.append(FaultSpec(
                kind=kind, target=f"saboteur{i}", time=draw_time(),
            ))
    return out
