"""Campaign workloads: small, fully deterministic mixed HW/SW systems.

Each :class:`Scenario` builds one closed system (kernel + devices +
channels, optionally a co-simulated R32 CPU), declares its injectable
target space for :func:`repro.fault.spec.sample_faults`, and knows how
to summarize a finished run into a JSON-stable *outcome record*.  The
campaign layer diffs faulty records against the golden one, so a record
contains only what identity should be judged on: the observable output
stream, the completion flag, and the system's own error-detection
verdict — **not** the finish time (a delayed-but-correct run is
*masked*, per the usual SBFI outcome taxonomy).

Two scenarios:

* ``coproc`` — the full stack: an R32 program streams words from an rx
  FIFO through a MAC coprocessor (register rung) while keeping a
  software shadow of the accumulation, then reports hardware result,
  software result, an agreement verdict, and an end marker over a
  message-rung channel.  The built-in redundancy is the *detection*
  mechanism faults are measured against.
* ``msgpipe`` — message rung only (no CPU, fast): a producer streams
  parity-protected words to a transform stage that checks parity,
  doubles the payload, and forwards it re-protected to a trusting
  consumer.  Upstream corruption is detectable; downstream corruption
  is silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cosim.backplane import (
    Backplane,
    MessageAdapter,
    RegisterAdapter,
)
from repro.cosim.kernel import Simulator, Watchdog
from repro.cosim.msglevel import Channel
from repro.cosim.signals import Clock, Signal
from repro.cosim.translevel import FifoDevice, RegisterDevice
from repro.fault.inject import MASK32, FaultInjector, System
from repro.fault.spec import FaultSpec

#: Default stall budget: generous against every legitimate burst of
#: same-time activity in these scenarios, tiny against a real spin.
DEFAULT_WATCHDOG = Watchdog(max_stalled_activations=4000)

#: Sentinel distinguishing "use the default watchdog" from "none".
_USE_DEFAULT = object()


@dataclass(frozen=True)
class Scenario:
    """One campaign workload."""

    name: str
    #: target-space description consumed by ``sample_faults``
    targets: Dict[str, Any]
    #: model-time horizon bounding every run
    horizon: float
    #: builds the system; returns (System, summarize) where
    #: ``summarize()`` yields the post-run outcome fields
    build: Callable[[Simulator], Tuple[System, Callable[[], Dict[str, Any]]]]


# ----------------------------------------------------------------------
# coproc: R32 + MAC coprocessor + FIFO + message channel
# ----------------------------------------------------------------------
FIFO_BASE = 0x200   # DATA / STATUS / LEVEL
MAC_BASE = 0x210    # OPA / OPB / ACC / CTL
OUT_BASE = 0x220    # message window (write = send)

COPROC_WORDS = [7, 21, 1, 255, 33, 129, 64, 5]
COPROC_COEFF = 3
END_MARKER = 0xD0E

COPROC_ASM = f"""
        li   r7, {COPROC_COEFF}     ; coefficient
        li   r8, {len(COPROC_WORDS)} ; words to process
        li   r9, 0                  ; processed so far
        li   r6, 0                  ; software shadow accumulator
poll:   lw   r1, {FIFO_BASE + 1}(r0) ; FIFO STATUS
        andi r1, r1, 1
        beq  r1, r0, poll
        lw   r1, {FIFO_BASE}(r0)    ; FIFO DATA
        sw   r1, {MAC_BASE}(r0)     ; MAC OPA
        sw   r7, {MAC_BASE + 1}(r0) ; MAC OPB
        li   r2, 1
        sw   r2, {MAC_BASE + 3}(r0) ; MAC CTL: ACC += OPA*OPB
        mul  r3, r1, r7             ; software shadow of the same MAC
        add  r6, r6, r3
        addi r9, r9, 1
        bne  r9, r8, poll
        lw   r2, {MAC_BASE + 2}(r0) ; MAC ACC
        sw   r2, {OUT_BASE}(r0)     ; report hardware result
        sw   r6, {OUT_BASE}(r0)     ; report software result
        li   r4, 1
        beq  r2, r6, agree
        li   r4, 0
agree:  sw   r4, {OUT_BASE}(r0)     ; agreement verdict
        li   r5, {END_MARKER}
        sw   r5, {OUT_BASE}(r0)     ; end marker
        halt
"""


class MacDevice(RegisterDevice):
    """Multiply-accumulate coprocessor on the register rung.

    Writing CTL with bit 0 set folds OPA*OPB into ACC.
    """

    OPA, OPB, ACC, CTL = 0, 1, 2, 3

    def __init__(self, sim: Simulator, name: str = "mac") -> None:
        super().__init__(sim, name, 4, access_time=2.0)

    def on_write(self, index: int, value: int) -> None:
        super().on_write(index, value)
        if index == self.CTL and value & 1:
            self.regs[self.ACC] = (
                self.regs[self.ACC]
                + self.regs[self.OPA] * self.regs[self.OPB]
            ) & MASK32


def _build_coproc(
    sim: Simulator,
) -> Tuple[System, Callable[[], Dict[str, Any]]]:
    from repro.isa.assembler import assemble
    from repro.isa.cpu import Cpu
    from repro.isa.instructions import Isa

    cpu = Cpu(Isa())
    cpu.memory.load_image(assemble(COPROC_ASM).image)
    plane = Backplane(sim, cpu, clock_period=10.0, batch_instructions=4)

    fifo = FifoDevice(sim, "rx", depth=16, access_time=2.0)
    mac = MacDevice(sim, "mac")
    out = Channel(
        sim, "out", latency_per_message=4.0, latency_per_word=1.0
    )
    plane.mount(FIFO_BASE, 3, RegisterAdapter(fifo))
    plane.mount(MAC_BASE, 4, RegisterAdapter(mac))
    plane.mount(OUT_BASE, 1, MessageAdapter(to_hw=out))

    enable = Signal(sim, "enable", init=0)
    clk = Clock(sim, "clk", period=20.0, until=2000.0)

    def starter() -> Generator:
        yield sim.timeout(10.0)
        enable.set(1)

    def producer() -> Generator:
        yield from enable.wait_for(1)
        for word in COPROC_WORDS:
            yield from clk.rising_edge()
            fifo.push(word)

    received: List[int] = []

    def monitor() -> Generator:
        for _ in range(4):
            item = yield from out.receive()
            received.append(item)

    sim.process(starter(), name="starter")
    sim.process(producer(), name="producer")
    sim.process(monitor(), name="monitor")
    plane.start()

    system = System(
        sim,
        cpu=cpu,
        signals={"enable": enable, "clk": clk},
        devices={"rx": fifo, "mac": mac},
        channels={"out": out},
    )

    def summarize() -> Dict[str, Any]:
        completed = cpu.halted and len(received) == 4
        return {
            "completed": completed,
            # verdict word 0 = the shadow computation caught a mismatch
            "detected": completed and received[2] == 0,
            "data": list(received),
        }

    return system, summarize


# ----------------------------------------------------------------------
# msgpipe: parity-protected producer -> transform -> trusting consumer
# ----------------------------------------------------------------------
PIPE_WORDS = [5, 9, 12, 33, 7, 21]
PIPE_OK, PIPE_BAD = 0x600D, 0xBAD


def _xor(words: List[int]) -> int:
    return reduce(lambda a, b: a ^ b, words, 0)


def _build_msgpipe(
    sim: Simulator,
) -> Tuple[System, Callable[[], Dict[str, Any]]]:
    a = Channel(sim, "a", latency_per_message=2.0, latency_per_word=1.0)
    b = Channel(sim, "b", latency_per_message=2.0, latency_per_word=1.0)
    enable = Signal(sim, "enable", init=0)

    def starter() -> Generator:
        yield sim.timeout(5.0)
        enable.set(1)

    def producer() -> Generator:
        yield from enable.wait_for(1)
        for word in PIPE_WORDS:
            yield from a.send(word)
        yield from a.send(_xor(PIPE_WORDS))

    def transform() -> Generator:
        words: List[int] = []
        for _ in range(len(PIPE_WORDS)):
            word = yield from a.receive()
            words.append(word)
        parity = yield from a.receive()
        ok = parity == _xor(words)
        doubled = [(w * 2) & MASK32 for w in words]
        for word in doubled:
            yield from b.send(word)
        yield from b.send(_xor(doubled))
        yield from b.send(PIPE_OK if ok else PIPE_BAD)

    received: List[int] = []
    expected = len(PIPE_WORDS) + 2

    def consumer() -> Generator:
        for _ in range(expected):
            item = yield from b.receive()
            received.append(item)

    sim.process(starter(), name="starter")
    sim.process(producer(), name="producer")
    sim.process(transform(), name="transform")
    sim.process(consumer(), name="consumer")

    system = System(
        sim,
        signals={"enable": enable},
        channels={"a": a, "b": b},
    )

    def summarize() -> Dict[str, Any]:
        completed = len(received) == expected
        return {
            "completed": completed,
            "detected": completed and received[-1] == PIPE_BAD,
            "data": list(received),
        }

    return system, summarize


SCENARIOS: Dict[str, Scenario] = {
    "coproc": Scenario(
        name="coproc",
        targets={
            "signals": ["enable", "clk"],
            "devices": {"rx": 3, "mac": 4},
            "channels": {"out": 4},
            "cpu": {"regs": 16, "max_count": 200, "pc_bits": 8},
            "time": (0.0, 2500.0),
            "data_bits": 16,
        },
        horizon=50_000.0,
        build=_build_coproc,
    ),
    "msgpipe": Scenario(
        name="msgpipe",
        targets={
            "signals": ["enable"],
            "channels": {"a": 7, "b": 8},
            "time": (0.0, 100.0),
            "data_bits": 16,
        },
        horizon=5_000.0,
        build=_build_msgpipe,
    ),
}


def run_scenario(
    name: str,
    fault: Optional[FaultSpec] = None,
    watchdog: Any = _USE_DEFAULT,
) -> Dict[str, Any]:
    """Run one scenario once, optionally with one fault armed.

    Returns the JSON-stable outcome record the campaign layer
    classifies; any exception the run raises (including
    :class:`~repro.cosim.kernel.HangDetected` from the watchdog) is
    folded into the record's ``error`` field rather than propagated, so
    a campaign worker never dies to a misbehaving cell.
    """
    scenario = SCENARIOS[name]
    if watchdog is _USE_DEFAULT:
        watchdog = DEFAULT_WATCHDOG
    sim = Simulator()
    system, summarize = scenario.build(sim)
    injector = FaultInjector(system)
    if fault is not None:
        injector.arm(fault)
    error: Optional[Dict[str, str]] = None
    try:
        sim.run(until=scenario.horizon, watchdog=watchdog)
    except Exception as exc:  # folded into the record, by design
        error = {"type": type(exc).__name__, "message": str(exc)[:200]}
    record = summarize()
    record.update(
        scenario=name,
        error=error,
        sim_time=sim.now,
        activations=sim.activations,
    )
    return record
