"""Campaign workloads: small, fully deterministic mixed HW/SW systems.

Each :class:`Scenario` builds one closed system (kernel + devices +
channels, optionally a co-simulated R32 CPU), declares its injectable
target space for :func:`repro.fault.spec.sample_faults`, and knows how
to summarize a finished run into a JSON-stable *outcome record*.  The
campaign layer diffs faulty records against the golden one, so a record
contains only what identity should be judged on: the observable output
stream, the completion flag, and the system's own error-detection
verdict — **not** the finish time (a delayed-but-correct run is
*masked*, per the usual SBFI outcome taxonomy).

Three scenarios:

* ``coproc`` — the full stack: an R32 program streams words from an rx
  FIFO through a MAC coprocessor (register rung) while keeping a
  software shadow of the accumulation, then reports hardware result,
  software result, an agreement verdict, and an end marker over a
  message-rung channel.  The built-in redundancy is the *detection*
  mechanism faults are measured against.
* ``msgpipe`` — message rung only (no CPU, fast): a producer streams
  parity-protected words to a transform stage that checks parity,
  doubles the payload, and forwards it re-protected to a trusting
  consumer.  Upstream corruption is detectable; downstream corruption
  is silent.
* ``swmac`` — software only (no kernel, no devices): a pure-R32
  duplicated multiply-accumulate over an LCG input stream, with the
  redundant copy as the detection mechanism.  Because the whole run is
  CPU-resident, its fault campaign can execute as lanes of one
  :class:`repro.isa.BatchCpu` (DESIGN §14) — this is the workload the
  batch tier's speedup is measured on (EXPERIMENTS E24).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.cosim.backplane import (
    Backplane,
    MessageAdapter,
    RegisterAdapter,
)
from repro.cosim.kernel import HangDetected, Simulator, Watchdog
from repro.cosim.msglevel import Channel
from repro.cosim.signals import Clock, Signal
from repro.cosim.translevel import FifoDevice, RegisterDevice
from repro.fault.inject import (
    MASK32,
    FaultInjector,
    InjectionError,
    System,
    _CpuSaboteur,
)
from repro.fault.spec import CPU_KINDS, FaultSpec

#: Default stall budget: generous against every legitimate burst of
#: same-time activity in these scenarios, tiny against a real spin.
DEFAULT_WATCHDOG = Watchdog(max_stalled_activations=4000)

#: Sentinel distinguishing "use the default watchdog" from "none".
_USE_DEFAULT = object()


@dataclass(frozen=True)
class SoftwareWorkload:
    """A pure-software (CPU-only) workload: one R32 program whose whole
    observable outcome lives in memory when it halts.

    Such scenarios need no simulation kernel — the instruction
    ``budget`` plays the watchdog's role — and, because every run is
    CPU-resident, a fault campaign over one can execute as lanes of a
    single :class:`repro.isa.BatchCpu` (see :func:`run_sw_batch`).
    """

    #: assembly source of the program
    source: str
    #: instruction budget; exceeding it raises ``HangDetected``
    budget: int
    #: base address of the output window the record is read from
    out_base: int
    #: number of output words in the record's ``data``
    out_len: int
    #: last output word of a completed run
    end_marker: int
    #: ``data`` index of the self-check verdict (0 = mismatch caught)
    verdict_index: int
    #: data address the program reads its input seed from
    seed_addr: int


@dataclass(frozen=True)
class Scenario:
    """One campaign workload."""

    name: str
    #: target-space description consumed by ``sample_faults``
    targets: Dict[str, Any]
    #: model-time horizon bounding every run
    horizon: float
    #: builds the system; returns (System, summarize) where
    #: ``summarize()`` yields the post-run outcome fields
    build: Optional[
        Callable[[Simulator], Tuple[System, Callable[[], Dict[str, Any]]]]
    ] = None
    #: set instead of ``build`` for kernel-less CPU-only workloads
    software: Optional[SoftwareWorkload] = None


# ----------------------------------------------------------------------
# coproc: R32 + MAC coprocessor + FIFO + message channel
# ----------------------------------------------------------------------
FIFO_BASE = 0x200   # DATA / STATUS / LEVEL
MAC_BASE = 0x210    # OPA / OPB / ACC / CTL
OUT_BASE = 0x220    # message window (write = send)

COPROC_WORDS = [7, 21, 1, 255, 33, 129, 64, 5]
COPROC_COEFF = 3
END_MARKER = 0xD0E

COPROC_ASM = f"""
        li   r7, {COPROC_COEFF}     ; coefficient
        li   r8, {len(COPROC_WORDS)} ; words to process
        li   r9, 0                  ; processed so far
        li   r6, 0                  ; software shadow accumulator
poll:   lw   r1, {FIFO_BASE + 1}(r0) ; FIFO STATUS
        andi r1, r1, 1
        beq  r1, r0, poll
        lw   r1, {FIFO_BASE}(r0)    ; FIFO DATA
        sw   r1, {MAC_BASE}(r0)     ; MAC OPA
        sw   r7, {MAC_BASE + 1}(r0) ; MAC OPB
        li   r2, 1
        sw   r2, {MAC_BASE + 3}(r0) ; MAC CTL: ACC += OPA*OPB
        mul  r3, r1, r7             ; software shadow of the same MAC
        add  r6, r6, r3
        addi r9, r9, 1
        bne  r9, r8, poll
        lw   r2, {MAC_BASE + 2}(r0) ; MAC ACC
        sw   r2, {OUT_BASE}(r0)     ; report hardware result
        sw   r6, {OUT_BASE}(r0)     ; report software result
        li   r4, 1
        beq  r2, r6, agree
        li   r4, 0
agree:  sw   r4, {OUT_BASE}(r0)     ; agreement verdict
        li   r5, {END_MARKER}
        sw   r5, {OUT_BASE}(r0)     ; end marker
        halt
"""


class MacDevice(RegisterDevice):
    """Multiply-accumulate coprocessor on the register rung.

    Writing CTL with bit 0 set folds OPA*OPB into ACC.
    """

    OPA, OPB, ACC, CTL = 0, 1, 2, 3

    def __init__(self, sim: Simulator, name: str = "mac") -> None:
        super().__init__(sim, name, 4, access_time=2.0)

    def on_write(self, index: int, value: int) -> None:
        super().on_write(index, value)
        if index == self.CTL and value & 1:
            self.regs[self.ACC] = (
                self.regs[self.ACC]
                + self.regs[self.OPA] * self.regs[self.OPB]
            ) & MASK32


def _build_coproc(
    sim: Simulator,
) -> Tuple[System, Callable[[], Dict[str, Any]]]:
    from repro.isa.assembler import assemble
    from repro.isa.cpu import Cpu
    from repro.isa.instructions import Isa

    cpu = Cpu(Isa())
    cpu.memory.load_image(assemble(COPROC_ASM).image)
    plane = Backplane(sim, cpu, clock_period=10.0, batch_instructions=4)

    fifo = FifoDevice(sim, "rx", depth=16, access_time=2.0)
    mac = MacDevice(sim, "mac")
    out = Channel(
        sim, "out", latency_per_message=4.0, latency_per_word=1.0
    )
    plane.mount(FIFO_BASE, 3, RegisterAdapter(fifo))
    plane.mount(MAC_BASE, 4, RegisterAdapter(mac))
    plane.mount(OUT_BASE, 1, MessageAdapter(to_hw=out))

    enable = Signal(sim, "enable", init=0)
    clk = Clock(sim, "clk", period=20.0, until=2000.0)

    def starter() -> Generator:
        yield sim.timeout(10.0)
        enable.set(1)

    def producer() -> Generator:
        yield from enable.wait_for(1)
        for word in COPROC_WORDS:
            yield from clk.rising_edge()
            fifo.push(word)

    received: List[int] = []

    def monitor() -> Generator:
        for _ in range(4):
            item = yield from out.receive()
            received.append(item)

    sim.process(starter(), name="starter")
    sim.process(producer(), name="producer")
    sim.process(monitor(), name="monitor")
    plane.start()

    system = System(
        sim,
        cpu=cpu,
        signals={"enable": enable, "clk": clk},
        devices={"rx": fifo, "mac": mac},
        channels={"out": out},
    )

    def summarize() -> Dict[str, Any]:
        completed = cpu.halted and len(received) == 4
        return {
            "completed": completed,
            # verdict word 0 = the shadow computation caught a mismatch
            "detected": completed and received[2] == 0,
            "data": list(received),
        }

    return system, summarize


# ----------------------------------------------------------------------
# msgpipe: parity-protected producer -> transform -> trusting consumer
# ----------------------------------------------------------------------
PIPE_WORDS = [5, 9, 12, 33, 7, 21]
PIPE_OK, PIPE_BAD = 0x600D, 0xBAD


def _xor(words: List[int]) -> int:
    return reduce(lambda a, b: a ^ b, words, 0)


def _build_msgpipe(
    sim: Simulator,
) -> Tuple[System, Callable[[], Dict[str, Any]]]:
    a = Channel(sim, "a", latency_per_message=2.0, latency_per_word=1.0)
    b = Channel(sim, "b", latency_per_message=2.0, latency_per_word=1.0)
    enable = Signal(sim, "enable", init=0)

    def starter() -> Generator:
        yield sim.timeout(5.0)
        enable.set(1)

    def producer() -> Generator:
        yield from enable.wait_for(1)
        for word in PIPE_WORDS:
            yield from a.send(word)
        yield from a.send(_xor(PIPE_WORDS))

    def transform() -> Generator:
        words: List[int] = []
        for _ in range(len(PIPE_WORDS)):
            word = yield from a.receive()
            words.append(word)
        parity = yield from a.receive()
        ok = parity == _xor(words)
        doubled = [(w * 2) & MASK32 for w in words]
        for word in doubled:
            yield from b.send(word)
        yield from b.send(_xor(doubled))
        yield from b.send(PIPE_OK if ok else PIPE_BAD)

    received: List[int] = []
    expected = len(PIPE_WORDS) + 2

    def consumer() -> Generator:
        for _ in range(expected):
            item = yield from b.receive()
            received.append(item)

    sim.process(starter(), name="starter")
    sim.process(producer(), name="producer")
    sim.process(transform(), name="transform")
    sim.process(consumer(), name="consumer")

    system = System(
        sim,
        signals={"enable": enable},
        channels={"a": a, "b": b},
    )

    def summarize() -> Dict[str, Any]:
        completed = len(received) == expected
        return {
            "completed": completed,
            "detected": completed and received[-1] == PIPE_BAD,
            "data": list(received),
        }

    return system, summarize


# ----------------------------------------------------------------------
# swmac: pure-software duplicated MAC over an LCG stream (batchable)
# ----------------------------------------------------------------------
SW_SEED_ADDR = 0x100    # program input: LCG seed word
SW_OUT_BASE = 0x300     # 4-word output window
SW_SEED = 0x1234        # golden seed baked into the image
SW_ITERS = 400
SW_COEFF = 3
SW_BUDGET = 8_000

SWMAC_ASM = f"""
        lw   r1, {SW_SEED_ADDR}(r0) ; x = input seed
        li   r10, 75                ; LCG multiplier
        li   r11, 74                ; LCG increment
        li   r12, {SW_ITERS}        ; iterations
        li   r2, 0                  ; i
        li   r3, 0                  ; accumulator A
        li   r4, 0                  ; accumulator B (redundant copy)
        li   r7, {SW_COEFF}         ; coefficient
loop:   mul  r1, r1, r10            ; x = 75*x + 74  (mod 2^32)
        add  r1, r1, r11
        mul  r5, r1, r7             ; term = x * coeff
        add  r3, r3, r5             ; A += term
        add  r4, r4, r5             ; B += term
        xor  r6, r3, r4             ; running agreement scratch
        addi r2, r2, 1
        bne  r2, r12, loop
        sw   r3, {SW_OUT_BASE}(r0)  ; result A
        sw   r4, {SW_OUT_BASE + 1}(r0) ; result B
        li   r5, 1
        beq  r3, r4, agree
        li   r5, 0
agree:  sw   r5, {SW_OUT_BASE + 2}(r0) ; agreement verdict
        li   r8, {END_MARKER}
        sw   r8, {SW_OUT_BASE + 3}(r0) ; end marker
        halt
"""

_SW_IMAGES: Dict[str, Dict[int, int]] = {}


def _sw_image(scenario: Scenario) -> Dict[int, int]:
    """The assembled image of a software scenario (memoized by name)."""
    image = _SW_IMAGES.get(scenario.name)
    if image is None:
        from repro.isa.assembler import assemble

        image = dict(assemble(scenario.software.source).image)
        image.setdefault(scenario.software.seed_addr, SW_SEED)
        _SW_IMAGES[scenario.name] = image
    return image


def _build_sw_cpu(scenario: Scenario) -> Any:
    from repro.isa.cpu import Cpu
    from repro.isa.instructions import Isa

    cpu = Cpu(Isa())
    cpu.memory.load_image(_sw_image(scenario))
    return cpu


def _drive_sw(cpu: Any, budget: int, steps: int = 0) -> None:
    """Run a software-scenario CPU to completion on the scalar tiers.

    Used both for whole scalar runs (``steps=0``) and to finish lanes
    the batch tier drained at ``steps`` — the one shared driver is what
    makes the two paths structurally byte-identical.  Raises
    :class:`~repro.cosim.kernel.HangDetected` when the instruction
    budget is exhausted (the software analogue of the watchdog) and
    :class:`~repro.isa.CpuError` on an external access, mirroring
    ``Cpu.run``.
    """
    from repro.isa.cpu import CpuError

    while not cpu.halted:
        if steps >= budget:
            raise HangDetected(
                f"instruction budget {budget} exhausted "
                f"at pc={cpu.pc:#x}"
            )
        ran, _cycles, access = cpu.run_block(budget - steps)
        steps += ran
        if access is not None:
            raise CpuError(
                f"external access at {access.addr:#x} outside "
                f"co-simulation; mount the region synchronously or "
                f"run under a backplane"
            )


def _sw_record(
    scenario: Scenario,
    cpu: Any,
    error: Optional[Dict[str, str]],
) -> Dict[str, Any]:
    sw = scenario.software
    ram = cpu.memory.ram
    data = [ram.get(sw.out_base + i, 0) for i in range(sw.out_len)]
    completed = cpu.halted and data[-1] == sw.end_marker
    return {
        "completed": completed,
        "detected": completed and data[sw.verdict_index] == 0,
        "data": data,
        "scenario": scenario.name,
        "error": error,
        "sim_time": float(cpu.cycle_count),
        "activations": cpu.instr_count,
    }


def _sw_arm_check(scenario: Scenario, fault: FaultSpec) -> None:
    if fault.kind not in CPU_KINDS:
        raise InjectionError(
            f"{fault.kind}: software scenario "
            f"{scenario.name!r} only has a CPU surface"
        )


def run_sw_scenario(
    scenario: Scenario,
    fault: Optional[FaultSpec] = None,
) -> Dict[str, Any]:
    """Run one software scenario once on the scalar tiers."""
    cpu = _build_sw_cpu(scenario)
    if fault is not None:
        _sw_arm_check(scenario, fault)
        cpu.observers.append(_CpuSaboteur(cpu, fault))
    error: Optional[Dict[str, str]] = None
    try:
        _drive_sw(cpu, scenario.software.budget)
    except Exception as exc:  # folded into the record, by design
        error = {"type": type(exc).__name__, "message": str(exc)[:200]}
    return _sw_record(scenario, cpu, error)


def _finish_lane(scenario: Scenario, exit: Any) -> Dict[str, Any]:
    """Drain one batch lane to its outcome record.

    Every lane — halted, drained, or budget-exhausted — goes through
    the same :func:`_drive_sw` continuation the scalar path uses, so
    the per-lane record is byte-identical to a scalar run of the same
    fault.  A lane whose saboteur has not fired yet is re-armed with
    its retirement count pre-set to the lane's exit step.
    """
    cpu = exit.cpu
    if exit.spec is not None and not exit.fired:
        saboteur = _CpuSaboteur(cpu, exit.spec)
        saboteur.retired = exit.steps
        cpu.observers.append(saboteur)
    error: Optional[Dict[str, str]] = None
    try:
        _drive_sw(cpu, scenario.software.budget, steps=exit.steps)
    except Exception as exc:  # folded into the record, by design
        error = {"type": type(exc).__name__, "message": str(exc)[:200]}
    return _sw_record(scenario, cpu, error)


def run_sw_batch(
    scenario: Scenario,
    faults: List[Optional[FaultSpec]],
) -> Tuple[List[Dict[str, Any]], Any]:
    """Run one fault per lane of a single :class:`~repro.isa.BatchCpu`.

    ``faults[i]`` arms lane ``i`` (``None`` = fault-free lane, e.g. the
    golden run).  Returns ``(records, stats)`` with ``records[i]``
    byte-identical to ``run_sw_scenario(scenario, faults[i])`` — the
    DESIGN §14 contract — and ``stats`` the batch's
    :class:`~repro.isa.BatchStats`.
    """
    from repro.isa import BatchCpu
    from repro.isa.instructions import Isa

    for fault in faults:
        if fault is not None:
            _sw_arm_check(scenario, fault)
    batch = BatchCpu(Isa(), _sw_image(scenario), n_lanes=len(faults))
    for lane, fault in enumerate(faults):
        if fault is not None:
            batch.arm(lane, fault)
    exits = batch.run(scenario.software.budget)
    records = [_finish_lane(scenario, exit) for exit in exits]
    return records, batch.stats


def run_sw_sweep(
    scenario: Scenario,
    seeds: List[int],
) -> Tuple[List[Dict[str, Any]], Any]:
    """Run one input seed per lane of a single batch (no faults).

    The input-sweep twin of :func:`run_sw_batch`: every lane executes
    the same program over a different seed word, diverging only where
    the data makes it diverge.  ``records[i]`` is byte-identical to a
    scalar run with ``seeds[i]`` poked into the image.
    """
    from repro.isa import BatchCpu
    from repro.isa.instructions import Isa

    sw = scenario.software
    batch = BatchCpu(Isa(), _sw_image(scenario), n_lanes=len(seeds))
    for lane, seed in enumerate(seeds):
        batch.seed_lane(lane, sw.seed_addr, seed & MASK32)
    exits = batch.run(sw.budget)
    records = [_finish_lane(scenario, exit) for exit in exits]
    return records, batch.stats


SCENARIOS: Dict[str, Scenario] = {
    "coproc": Scenario(
        name="coproc",
        targets={
            "signals": ["enable", "clk"],
            "devices": {"rx": 3, "mac": 4},
            "channels": {"out": 4},
            "cpu": {"regs": 16, "max_count": 200, "pc_bits": 8},
            "time": (0.0, 2500.0),
            "data_bits": 16,
        },
        horizon=50_000.0,
        build=_build_coproc,
    ),
    "msgpipe": Scenario(
        name="msgpipe",
        targets={
            "signals": ["enable"],
            "channels": {"a": 7, "b": 8},
            "time": (0.0, 100.0),
            "data_bits": 16,
        },
        horizon=5_000.0,
        build=_build_msgpipe,
    ),
    "swmac": Scenario(
        name="swmac",
        targets={
            "cpu": {"regs": 16, "max_count": 3_000, "pc_bits": 8},
            "data_bits": 16,
            "kinds": list(CPU_KINDS),
        },
        horizon=float(SW_BUDGET),
        software=SoftwareWorkload(
            source=SWMAC_ASM,
            budget=SW_BUDGET,
            out_base=SW_OUT_BASE,
            out_len=4,
            end_marker=END_MARKER,
            verdict_index=2,
            seed_addr=SW_SEED_ADDR,
        ),
    ),
}


def run_scenario(
    name: str,
    fault: Optional[FaultSpec] = None,
    watchdog: Any = _USE_DEFAULT,
) -> Dict[str, Any]:
    """Run one scenario once, optionally with one fault armed.

    Returns the JSON-stable outcome record the campaign layer
    classifies; any exception the run raises (including
    :class:`~repro.cosim.kernel.HangDetected` from the watchdog) is
    folded into the record's ``error`` field rather than propagated, so
    a campaign worker never dies to a misbehaving cell.

    Software-only scenarios (``scenario.software`` set) have no kernel;
    ``watchdog`` is ignored for them and the workload's instruction
    budget bounds the run instead.
    """
    scenario = SCENARIOS[name]
    if scenario.software is not None:
        return run_sw_scenario(scenario, fault)
    if watchdog is _USE_DEFAULT:
        watchdog = DEFAULT_WATCHDOG
    sim = Simulator()
    system, summarize = scenario.build(sim)
    injector = FaultInjector(system)
    if fault is not None:
        injector.arm(fault)
    error: Optional[Dict[str, str]] = None
    try:
        sim.run(until=scenario.horizon, watchdog=watchdog)
    except Exception as exc:  # folded into the record, by design
        error = {"type": type(exc).__name__, "message": str(exc)[:200]}
    record = summarize()
    record.update(
        scenario=name,
        error=error,
        sim_time=sim.now,
        activations=sim.activations,
    )
    return record
