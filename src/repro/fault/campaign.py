"""Fault campaigns: golden-vs-faulty runs, classified and tabulated.

A campaign takes one scenario and a list of :class:`FaultSpec`, runs
the golden (fault-free) reference plus one run per fault — reusing the
sweep engine's :func:`~repro.sweep.engine.pool_map` fan-out and
:class:`~repro.sweep.cache.ResultCache` — and classifies every outcome
record against the golden one:

``crash``
    the run raised (CPU fault, kernel error) — anything but a watchdog
    :class:`~repro.cosim.kernel.HangDetected`;
``hang``
    the watchdog fired, or the run ended without the workload
    completing (deadlock, starvation, lost message);
``detected``
    the workload completed and its *own* redundancy flagged the fault;
``sdc``
    completed, undetected, but the output stream differs from golden —
    silent data corruption, the outcome dependability work cares most
    about;
``masked``
    completed with output identical to golden.

The precedence above is total, so every fault lands in exactly one
class, and classification happens in the parent from JSON-stable
records — the histogram is identical at any worker count.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.fault.scenarios import SCENARIOS, run_scenario
from repro.fault.spec import FAULT_VERSION, OUTCOMES, FaultSpec
from repro.cosim.metrics import MetricsRegistry
from repro.obs.live import TelemetryEmitter
from repro.obs.spans import SpanTracer
from repro.sweep.cache import ResultCache
from repro.sweep.engine import CellTiming, pool_map

#: A campaign job: (scenario name, fault dict or None for golden).
Job = Tuple[str, Optional[Dict[str, Any]]]


class CampaignError(RuntimeError):
    """The golden run is unusable as a classification reference."""


def cell_fingerprint(scenario: str, fault: Optional[FaultSpec]) -> str:
    """Cache key for one (scenario, fault) cell.

    Versioned alongside :data:`~repro.fault.spec.FAULT_VERSION` so a
    schema change invalidates old entries instead of misclassifying
    against them.
    """
    doc = {
        "version": FAULT_VERSION,
        "scenario": scenario,
        "fault": fault.to_dict() if fault is not None else None,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":"))
        .encode("utf-8")
    ).hexdigest()


def run_fault_cell(job: Job) -> Dict[str, Any]:
    """Run one campaign cell (top-level, so pool workers can pickle it)."""
    scenario, fault_dict = job
    fault = FaultSpec.from_dict(fault_dict) if fault_dict else None
    return run_scenario(scenario, fault)


def run_fault_cell_observed(
    job: Job,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """:func:`run_fault_cell` plus a worker-side observability payload.

    Mirrors :func:`repro.sweep.engine.run_cell_observed`: the record is
    byte-identical to the unobserved path (so caches stay comparable);
    the extra spans/metrics ride alongside for the parent to merge onto
    its Perfetto timeline.
    """
    scenario, fault_dict = job
    fault = FaultSpec.from_dict(fault_dict) if fault_dict else None
    spans = SpanTracer()
    spans.name_lane(spans.pid, f"fault worker {os.getpid()}")
    metrics = MetricsRegistry()
    label = fault.describe() if fault is not None else "golden"
    with spans.span("fault_cell", scenario=scenario, fault=label,
                    kind=(fault.kind if fault is not None else "none")):
        record = run_scenario(scenario, fault)
    metrics.counter("fault.cells").inc()
    if fault is not None:
        metrics.counter(f"fault.kind.{fault.kind}.cells").inc()
    obs = {
        "pid": os.getpid(),
        "spans": spans.snapshot(),
        "metrics": metrics.snapshot(),
    }
    return record, obs


def classify(golden: Dict[str, Any], faulty: Dict[str, Any]) -> str:
    """Place one faulty record into exactly one outcome class."""
    error = faulty.get("error")
    if error is not None:
        return "hang" if error["type"] == "HangDetected" else "crash"
    if not faulty["completed"]:
        return "hang"
    if faulty["detected"]:
        return "detected"
    if faulty["data"] != golden["data"]:
        return "sdc"
    return "masked"


@dataclass
class CampaignStats:
    """Volatile facts about one campaign run — never serialized into
    the result (which must be reproducible across runs and hosts)."""

    faults: int = 0
    computed: int = 0
    cache_hits: int = 0
    duplicates: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.faults} faults: {self.cache_hits} cached, "
            f"{self.computed} computed ({self.duplicates} duplicate), "
            f"workers={self.workers}, {self.elapsed_s:.2f}s"
        )


@dataclass
class CampaignResult:
    """One campaign's classified outcomes, in input-fault order."""

    scenario: str
    golden: Dict[str, Any]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    stats: CampaignStats = field(default_factory=CampaignStats)

    def histogram(self) -> Dict[str, int]:
        """Outcome counts, every class present (zero-filled)."""
        hist = {outcome: 0 for outcome in OUTCOMES}
        for row in self.rows:
            hist[row["outcome"]] += 1
        return hist

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        """Per-fault-kind outcome counts (kinds in first-seen order)."""
        table: Dict[str, Dict[str, int]] = {}
        for row in self.rows:
            kind = row["fault"]["kind"]
            hist = table.setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            hist[row["outcome"]] += 1
        return table

    # ------------------------------------------------------------------
    # dependability figures of merit
    # ------------------------------------------------------------------
    def detection_coverage(self) -> float:
        """detected / (detected + sdc): how often the system's own
        redundancy catches a fault that corrupted the output."""
        hist = self.histogram()
        exposed = hist["detected"] + hist["sdc"]
        return hist["detected"] / exposed if exposed else 1.0

    def safe_ratio(self) -> float:
        """(masked + detected) / total: runs with no silent bad outcome."""
        if not self.rows:
            return 1.0
        hist = self.histogram()
        return (hist["masked"] + hist["detected"]) / len(self.rows)

    def dependability_table(self) -> str:
        """The human-readable kind × outcome report."""
        kinds = self.by_kind()
        width = max([len(k) for k in kinds] + [len("kind")])
        header = ["kind".ljust(width)] + [
            outcome.rjust(9) for outcome in OUTCOMES
        ] + ["total".rjust(7)]
        lines = [
            f"fault campaign: scenario={self.scenario} "
            f"faults={len(self.rows)}",
            "  ".join(header),
        ]
        for kind, hist in kinds.items():
            cells = [kind.ljust(width)] + [
                str(hist[outcome]).rjust(9) for outcome in OUTCOMES
            ] + [str(sum(hist.values())).rjust(7)]
            lines.append("  ".join(cells))
        total = self.histogram()
        cells = ["TOTAL".ljust(width)] + [
            str(total[outcome]).rjust(9) for outcome in OUTCOMES
        ] + [str(len(self.rows)).rjust(7)]
        lines.append("  ".join(cells))
        lines.append(
            f"detection coverage (detected/exposed): "
            f"{self.detection_coverage():.3f}   "
            f"safe ratio (masked+detected)/total: "
            f"{self.safe_ratio():.3f}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """The full, reproducible campaign result as JSON."""
        return json.dumps(
            {
                "version": FAULT_VERSION,
                "scenario": self.scenario,
                "golden": self.golden,
                "histogram": self.histogram(),
                "by_kind": self.by_kind(),
                "detection_coverage": self.detection_coverage(),
                "safe_ratio": self.safe_ratio(),
                "rows": self.rows,
            },
            sort_keys=True, indent=2,
        )


def run_campaign(
    scenario: str,
    faults: Iterable[FaultSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    span_tracer: Optional[SpanTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    recorder=None,
    batch: bool = False,
) -> CampaignResult:
    """Run the golden reference plus one cell per fault; classify all.

    Identical execution discipline to :func:`repro.sweep.engine.run_sweep`:
    ``workers=1`` stays in-process, more workers fan the uncached cells
    over a process pool; duplicate faults are computed once; a
    ``cache`` makes re-runs incremental; attaching a ``span_tracer``
    puts per-fault spans (recorded inside the workers) onto the
    parent's Perfetto timeline without perturbing the records.
    ``recorder`` arms the flight recorder exactly as in ``run_sweep``
    — live run marks and heartbeats, never a byte in the records.

    ``batch=True`` routes the uncached cells of a software-only
    scenario (golden + every CPU fault) through one
    :class:`~repro.isa.BatchCpu` — one lane per cell, executed in the
    parent (DESIGN §14).  Records, classification, and the cache
    content are byte-identical to the scalar path; only wall clock and
    the volatile stats change.  The flag is a no-op for scenarios that
    need the simulation kernel and in store mode (where shards own
    execution).
    """
    if scenario not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}"
        )
    faults = list(faults)
    metrics = metrics if metrics is not None else MetricsRegistry()
    observed = span_tracer is not None
    t0 = time.perf_counter()
    stats = CampaignStats(faults=len(faults), workers=workers)
    metrics.counter("fault.campaign.faults").inc(len(faults))

    if span_tracer is not None:
        span_tracer.name_lane(span_tracer.pid, "fault campaign")
        campaign_span = span_tracer.span(
            "campaign", scenario=scenario, faults=len(faults),
            workers=workers,
        )
        campaign_span.__enter__()
    else:
        campaign_span = None

    records: Dict[str, Dict[str, Any]] = {}
    pending: List[Tuple[str, Job]] = []  # (fingerprint, job)

    def want(fault: Optional[FaultSpec]) -> str:
        """Register one cell; returns its fingerprint."""
        fingerprint = cell_fingerprint(scenario, fault)
        if fingerprint in records:
            stats.duplicates += 1
            return fingerprint
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            records[fingerprint] = cached
            stats.cache_hits += 1
            metrics.counter("fault.cache.hits").inc()
        else:
            records[fingerprint] = {}  # reserve against duplicates
            job: Job = (
                scenario, fault.to_dict() if fault is not None else None
            )
            pending.append((fingerprint, job))
            metrics.counter("fault.cache.misses").inc()
        return fingerprint

    golden_fp = want(None)
    fault_fps = [want(fault) for fault in faults]

    #: a CampaignStore (duck-typed on its queue surface) switches the
    #: fan-out to the durable campaign service — resumable after any
    #: interruption, results committed by the shards themselves.
    store_mode = cache is not None and hasattr(cache, "claim")

    #: pool mode emits from the parent; store mode hands the recorder
    #: to the campaign service (coordinator + shard streams) instead
    emitter = None
    if recorder is not None and not store_mode:
        emitter = TelemetryEmitter(recorder, role="fault")
        emitter.emit("run", event="start", scenario=scenario,
                     faults=len(faults), workers=workers)

    def finish(fingerprint: str, record: Dict[str, Any],
               timing: CellTiming,
               obs: Optional[Dict[str, Any]]) -> None:
        records[fingerprint] = record
        stats.computed += 1
        if emitter is not None:
            emitter.heartbeat(done=stats.computed + stats.cache_hits,
                              cache_hits=stats.cache_hits,
                              total=len(faults) + 1)
        metrics.counter("fault.cells.computed").inc()
        metrics.histogram("fault.cell.elapsed_s").observe(
            timing.elapsed_s)
        if timing.wait_s is not None:
            metrics.histogram("fault.cell.wait_s").observe(
                timing.wait_s)
        if cache is not None and not store_mode:
            cache.put(fingerprint, record)
        if obs is not None:
            metrics.merge(obs["metrics"])
            span_tracer.merge_snapshot(
                obs["spans"], lane=f"fault worker {obs['pid']}"
            )

    scenario_obj = SCENARIOS[scenario]
    if (batch and not store_mode and pending
            and scenario_obj.software is not None):
        from repro.fault.scenarios import run_sw_batch
        from repro.fault.spec import CPU_KINDS

        lanes: List[Tuple[str, Optional[FaultSpec]]] = []
        rest: List[Tuple[str, Job]] = []
        for fingerprint, job in pending:
            fault_dict = job[1]
            spec = FaultSpec.from_dict(fault_dict) if fault_dict else None
            if spec is None or spec.kind in CPU_KINDS:
                lanes.append((fingerprint, spec))
            else:
                rest.append((fingerprint, job))
        if lanes:
            t_batch = time.perf_counter()
            lane_records, batch_stats = run_sw_batch(
                scenario_obj, [spec for _, spec in lanes]
            )
            per_cell = (time.perf_counter() - t_batch) / len(lanes)
            metrics.counter("fault.batch.lanes").inc(batch_stats.lanes)
            metrics.counter("fault.batch.dispatches").inc(
                batch_stats.dispatches)
            metrics.counter("fault.batch.drained").inc(
                batch_stats.drained())
            metrics.histogram("fault.batch.occupancy").observe(
                batch_stats.occupancy())
            if emitter is not None:
                emitter.emit(
                    "batch", scenario=scenario,
                    lanes=batch_stats.lanes,
                    dispatches=batch_stats.dispatches,
                    drained=batch_stats.drained(),
                    occupancy=round(batch_stats.occupancy(), 4),
                    reasons=dict(batch_stats.reasons),
                )
            for (fingerprint, _spec), record in zip(lanes, lane_records):
                finish(fingerprint, record, CellTiming(per_cell), None)
        pending = rest

    try:
        if store_mode:
            from repro.campaign.service import run_store_jobs

            payloads = [
                (fp, {"scenario": scenario_name, "fault": fault_dict})
                for fp, (scenario_name, fault_dict) in pending
            ]

            def on_committed(fingerprint: str, record: Dict[str, Any],
                             obs: Optional[Dict[str, Any]],
                             elapsed_s: float) -> None:
                finish(fingerprint, record, CellTiming(elapsed_s), obs)

            runner = "fault_observed" if observed else "fault"
            run_store_jobs(cache, runner, payloads, workers,
                           on_committed, metrics=metrics,
                           span_tracer=span_tracer, recorder=recorder)
        else:
            by_job_fp = {id(job): fp for fp, job in pending}

            def on_done(job: Job, out: Any,
                        timing: CellTiming) -> None:
                record, obs = out if observed else (out, None)
                finish(by_job_fp[id(job)], record, timing, obs)

            cell_fn = (run_fault_cell_observed if observed
                       else run_fault_cell)
            pool_map(cell_fn, [job for _, job in pending], workers,
                     on_done)
    except BaseException:
        # never leave the campaign span open across a failed fan-out
        if campaign_span is not None:
            campaign_span.__exit__(*sys.exc_info())
            campaign_span = None
        raise

    golden = records[golden_fp]
    if golden.get("error") or not golden.get("completed") \
            or golden.get("detected"):
        raise CampaignError(
            f"golden run of {scenario!r} is not a valid reference: "
            f"{golden!r}"
        )

    result = CampaignResult(scenario=scenario, golden=golden)
    for fault, fingerprint in zip(faults, fault_fps):
        record = records[fingerprint]
        result.rows.append({
            "fault": fault.to_dict(),
            "label": fault.describe(),
            "fingerprint": fingerprint,
            "outcome": classify(golden, record),
            "record": record,
        })

    if campaign_span is not None:
        campaign_span.__exit__(None, None, None)
    stats.elapsed_s = time.perf_counter() - t0
    if emitter is not None:
        # the final beat carries ``exiting`` so post-mortems read a
        # completed campaign as exited, not dead (rate limiting would
        # otherwise swallow it on short runs)
        emitter.heartbeat(force=True, exiting=True,
                          done=stats.computed + stats.cache_hits,
                          cache_hits=stats.cache_hits,
                          total=len(faults) + 1)
        emitter.emit("run", event="finish", scenario=scenario,
                     done=stats.computed + stats.cache_hits,
                     computed=stats.computed,
                     cache_hits=stats.cache_hits,
                     elapsed_s=stats.elapsed_s)
    result.stats = stats
    for outcome, count in result.histogram().items():
        metrics.counter(f"fault.outcome.{outcome}").inc(count)
    return result
