"""Fault injectors: arm a :class:`FaultSpec` against a live system.

The injector is strictly *additive* and *zero-cost when idle*: a
:class:`System` with a :class:`FaultInjector` attached but no faults
armed runs the identical event sequence — and allocates nothing from
this module — compared to a system with no injector at all.  (The
robustness suite enforces this with tracemalloc and with poisoned
saboteur constructors, the same discipline the PR 1 observability layer
follows.)

Each fault kind maps onto the narrowest hook its layer already offers:

* ``signal_flip`` / ``reg_flip`` / ``proc_spin`` — a saboteur process
  scheduled at ``spec.time``;
* ``cpu_*`` — a one-shot retirement observer on
  :attr:`repro.isa.cpu.Cpu.observers`;
* ``msg_*`` — a per-instance wrapper around ``Channel.send`` that
  drops, duplicates, delays, reorders, or corrupts the Nth message in
  transport (the class and every other channel stay untouched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.cosim.kernel import Simulator
from repro.cosim.msglevel import Channel
from repro.cosim.signals import Signal
from repro.fault.spec import FaultSpec

MASK32 = 0xFFFFFFFF


class InjectionError(ValueError):
    """A spec names a target the system does not have."""


@dataclass
class System:
    """The injectable surface of one simulated system.

    Scenario builders fill in whichever layers they instantiate; the
    injector resolves :attr:`FaultSpec.target` against these maps and
    refuses (loudly) anything it cannot find.  ``devices`` values are
    any objects with a mutable ``regs`` list
    (:class:`repro.cosim.translevel.RegisterDevice` and friends).
    """

    sim: Simulator
    cpu: Optional[Any] = None
    signals: Dict[str, Signal] = field(default_factory=dict)
    devices: Dict[str, Any] = field(default_factory=dict)
    channels: Dict[str, Channel] = field(default_factory=dict)


class _CpuSaboteur:
    """One-shot retirement observer implementing the ``cpu_*`` kinds."""

    __slots__ = ("cpu", "spec", "retired", "fired")

    def __init__(self, cpu: Any, spec: FaultSpec) -> None:
        self.cpu = cpu
        self.spec = spec
        self.retired = 0
        self.fired = False

    def __call__(self, pc: int, instr: Any) -> None:
        if self.fired:
            return
        self.retired += 1
        if self.retired < self.spec.count:
            return
        self.fired = True
        spec, cpu = self.spec, self.cpu
        if spec.kind == "cpu_reg_flip":
            cpu.regs[spec.index] ^= (1 << spec.bit)
            cpu.regs[spec.index] &= MASK32
        elif spec.kind == "cpu_pc_flip":
            cpu.pc ^= (1 << spec.bit)
        else:  # cpu_flag_flip
            setattr(cpu, spec.flag, not getattr(cpu, spec.flag))


class _MessageSaboteur:
    """Per-channel ``send`` wrapper implementing the ``msg_*`` kinds.

    Counts messages from arming; acts on message ``spec.index`` (and,
    for ``msg_reorder``, its successor).  Wrapping is per *instance*:
    ``channel.send`` is rebound to :meth:`send`, chaining over whatever
    was there before, so several message faults can stack on one
    channel.
    """

    __slots__ = ("channel", "spec", "orig_send", "seen", "held")

    def __init__(self, channel: Channel, spec: FaultSpec) -> None:
        self.channel = channel
        self.spec = spec
        self.orig_send = channel.send
        self.seen = 0
        self.held: Optional[tuple] = None
        channel.send = self.send  # type: ignore[method-assign]

    def send(self, item: Any, words: int = 1) -> Generator:
        spec = self.spec
        index = self.seen
        self.seen += 1
        if self.held is not None and index == spec.index + 1:
            # msg_reorder: successor first, then the held message
            held_item, held_words = self.held
            self.held = None
            yield from self.orig_send(item, words)
            yield from self.orig_send(held_item, held_words)
            return
        if index != spec.index:
            yield from self.orig_send(item, words)
            return
        if spec.kind == "msg_drop":
            # the transport still takes its time; the payload vanishes
            delay = self.channel.transfer_delay(words)
            if delay > 0:
                yield self.channel.sim.timeout(delay)
        elif spec.kind == "msg_dup":
            yield from self.orig_send(item, words)
            yield from self.orig_send(item, words)
        elif spec.kind == "msg_delay":
            yield self.channel.sim.timeout(spec.delay)
            yield from self.orig_send(item, words)
        elif spec.kind == "msg_reorder":
            self.held = (item, words)
        else:  # msg_corrupt
            if isinstance(item, int):
                item = (item ^ (1 << spec.bit)) & MASK32
            yield from self.orig_send(item, words)


def _flip_later(system: System, spec: FaultSpec) -> Generator:
    """Saboteur process body for the time-triggered state flips."""
    yield system.sim.timeout(spec.time)
    if spec.kind == "signal_flip":
        sig = system.signals[spec.target]
        sig.set((sig.value ^ (1 << spec.bit)) & MASK32)
    else:  # reg_flip
        regs = system.devices[spec.target].regs
        regs[spec.index % len(regs)] ^= (1 << spec.bit)
        regs[spec.index % len(regs)] &= MASK32


def _spin_later(system: System, spec: FaultSpec) -> Generator:
    """Saboteur that stops yielding time: the watchdog's prey."""
    yield system.sim.timeout(spec.time)
    while True:
        yield system.sim.timeout(0.0)


class FaultInjector:
    """Arms :class:`FaultSpec` instances against one :class:`System`.

    Construction touches nothing; every hook is installed by
    :meth:`arm`.  An injector with an empty :attr:`armed` list is
    indistinguishable from no injector at all.
    """

    def __init__(self, system: System) -> None:
        self.system = system
        self.armed: List[FaultSpec] = []
        self._hooks: List[tuple] = []

    def arm(self, spec: FaultSpec) -> None:
        """Install the hook for one fault; raises
        :class:`InjectionError` if the target does not exist."""
        system = self.system
        if spec.kind == "signal_flip":
            if spec.target not in system.signals:
                raise InjectionError(
                    f"no signal {spec.target!r}; have "
                    f"{sorted(system.signals)}"
                )
            system.sim.process(
                _flip_later(system, spec), name=f"fault.{spec.kind}"
            )
        elif spec.kind == "reg_flip":
            device = system.devices.get(spec.target)
            if device is None or not getattr(device, "regs", None):
                raise InjectionError(
                    f"no register device {spec.target!r}; have "
                    f"{sorted(system.devices)}"
                )
            system.sim.process(
                _flip_later(system, spec), name=f"fault.{spec.kind}"
            )
        elif spec.kind.startswith("cpu_"):
            if system.cpu is None:
                raise InjectionError(f"{spec.kind}: system has no CPU")
            if spec.kind == "cpu_reg_flip" and not (
                0 <= spec.index < len(system.cpu.regs)
            ):
                raise InjectionError(
                    f"cpu_reg_flip: no register r{spec.index}"
                )
            saboteur = _CpuSaboteur(system.cpu, spec)
            system.cpu.observers.append(saboteur)
            self._hooks.append(("cpu", saboteur))
        elif spec.kind.startswith("msg_"):
            channel = system.channels.get(spec.target)
            if channel is None:
                raise InjectionError(
                    f"no channel {spec.target!r}; have "
                    f"{sorted(system.channels)}"
                )
            self._hooks.append(("msg", _MessageSaboteur(channel, spec)))
        else:  # proc_spin
            system.sim.process(
                _spin_later(system, spec), name=f"fault.{spec.target}"
            )
        self.armed.append(spec)

    def disarm(self) -> None:
        """Remove every hook :meth:`arm` installed that is removable
        without rewinding the simulator.

        CPU saboteurs leave ``cpu.observers`` — which re-engages
        whichever fast tier the CPU has (the interpreted block loop
        *and* the translated tier, see DESIGN §13) on the very next
        ``run_block`` call; message saboteurs unwrap, restoring the
        channel's original ``send`` even when several were stacked.
        Time-triggered saboteur *processes* (``signal_flip``,
        ``reg_flip``, ``proc_spin``) already belong to the kernel's
        run queue and are left to expire on their own.  Idempotent.
        """
        cpu = self.system.cpu
        for kind, hook in reversed(self._hooks):
            if kind == "cpu":
                if cpu is not None and hook in cpu.observers:
                    cpu.observers.remove(hook)
            else:  # msg: unwrap LIFO so stacked wrappers unchain
                hook.channel.send = hook.orig_send
        self._hooks.clear()
        self.armed.clear()


def arm_fault(system: System, spec: FaultSpec) -> FaultInjector:
    """Convenience: build an injector and arm one fault."""
    injector = FaultInjector(system)
    injector.arm(spec)
    return injector
