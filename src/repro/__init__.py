"""repro — an executable reproduction of Adams & Thomas, DAC 1996.

``repro`` implements the hardware/software co-design framework described in
*The Design of Mixed Hardware/Software Systems* (33rd DAC, 1996) as a
working Python library:

* :mod:`repro.core` — the paper's primary contribution: the Type I / Type II
  system taxonomy, the design-task classification, and the four-criteria
  characterization engine, plus an end-to-end co-design flow driver.
* :mod:`repro.graph` — task graphs, control/data-flow graphs, generators,
  and a DSP kernel library.
* :mod:`repro.spec` — communicating-process system specifications.
* :mod:`repro.isa` — the R32 instruction set, assembler, cycle-level CPU
  simulator, code generator, and profiler (the software side).
* :mod:`repro.hls` — high-level synthesis (the hardware side).
* :mod:`repro.estimate` — hardware/software/communication estimators,
  including incremental hardware estimation with sharing.
* :mod:`repro.cosim` — discrete-event co-simulation at four interface
  abstraction levels (pin, register/interrupt, bus transaction, message).
* :mod:`repro.partition` — hardware/software partitioning algorithms and
  the six-factor cost model of Section 3.3.
* :mod:`repro.cosynth` — co-synthesis flows (heterogeneous multiprocessors,
  co-processors, multi-threaded co-processors).
* :mod:`repro.interface` — Chinook-style interface synthesis.
* :mod:`repro.asip` — application-specific instruction-set processor design
  and special-purpose functional units.

Quickstart::

    from repro.graph.generators import random_layered_graph
    from repro.partition import PartitionProblem, simulated_annealing
    import random

    graph = random_layered_graph(random.Random(1), n_tasks=12)
    problem = PartitionProblem.from_task_graph(graph, hw_area_budget=500.0)
    result = simulated_annealing(problem, rng=random.Random(2))
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "graph",
    "spec",
    "isa",
    "hls",
    "estimate",
    "cosim",
    "partition",
    "cosynth",
    "interface",
    "asip",
]
