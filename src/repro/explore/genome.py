"""Genome encoding for the design-space explorer.

A *genome* is a plain ``{gene name: value}`` dict drawn from a
:class:`SearchSpace` — an ordered list of :class:`Gene`, each a
**finite value grid** (the same discipline as
:data:`repro.partition.knobs.HEURISTIC_KNOBS`, and for the same
reason: every evaluated genome is fingerprinted into the sweep result
cache, and finite grids make repeated genomes byte-identical, hence
free).

The default space (:func:`design_space`) covers the axes ROADMAP item
2 names:

* **graph generator params** — generator family and task count;
* **heuristic + its knobs** — the :data:`~repro.partition.HEURISTICS`
  choice plus every knob the registry declares for it, encoded as
  conditionally-active genes (``knob:<heuristic>.<name>``);
* **cost-model weights** — the :class:`~repro.partition.CostWeights`
  factors the chosen heuristic *optimizes under* (objectives are
  always measured under fixed reference weights, so tuning-weight
  genes steer the search without bending the yardstick);
* **cost model / communication model** — the workload's cost tables.

Inactive knob genes (knobs of heuristics the genome did not pick) are
carried by the GA — the standard hidden-gene treatment, so a mutation
that flips the heuristic re-activates previously-tuned knobs — but are
**projected out** by :func:`SearchSpace.effective` before
fingerprinting, so two genomes that differ only in hidden genes share
one cache entry.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graph.generators import COST_MODELS, GENERATORS
from repro.partition import HEURISTIC_KNOBS, HEURISTICS
from repro.partition.cost import CostWeights
from repro.sweep.config import COMM_MODELS

#: Bump when genome semantics or the evaluation record schema change:
#: old cache entries then read as misses instead of lying.
EXPLORE_VERSION = 1

#: Gene-name prefix for heuristic knobs: ``knob:<heuristic>.<knob>``.
KNOB_PREFIX = "knob:"

#: Gene-name prefix for tuning-weight genes: ``weight:<factor>``.
WEIGHT_PREFIX = "weight:"

Genome = Dict[str, Any]


@dataclass(frozen=True)
class Gene:
    """One axis of the search space: a finite, ordered value grid."""

    name: str
    values: Tuple[Any, ...]
    default: Any
    #: when set, this gene only applies while gene ``active_gene`` holds
    #: ``active_value`` (knob genes: active while their heuristic is
    #: selected).  Inactive genes are dropped from the effective genome.
    active_gene: Optional[str] = None
    active_value: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"gene {self.name!r} has an empty grid")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"gene {self.name!r} grid has duplicates")
        if self.default not in self.values:
            raise ValueError(
                f"gene {self.name!r}: default {self.default!r} not in "
                f"grid"
            )


class SearchSpace:
    """An ordered, finite design space over named genes."""

    def __init__(self, genes: Sequence[Gene]) -> None:
        self.genes: Tuple[Gene, ...] = tuple(genes)
        self.by_name: Dict[str, Gene] = {}
        for gene in self.genes:
            if gene.name in self.by_name:
                raise ValueError(f"duplicate gene {gene.name!r}")
            self.by_name[gene.name] = gene
        for gene in self.genes:
            if gene.active_gene is not None \
                    and gene.active_gene not in self.by_name:
                raise ValueError(
                    f"gene {gene.name!r} conditioned on unknown gene "
                    f"{gene.active_gene!r}"
                )

    # ------------------------------------------------------------------
    # construction of genomes
    # ------------------------------------------------------------------
    def default_genome(self) -> Genome:
        """Every gene at its default value."""
        return {gene.name: gene.default for gene in self.genes}

    def random_genome(self, rng: random.Random) -> Genome:
        """Uniform draw per gene (the random-search baseline's move)."""
        return {
            gene.name: gene.values[rng.randrange(len(gene.values))]
            for gene in self.genes
        }

    def validate(self, genome: Genome) -> None:
        """Reject missing/unknown genes and off-grid values loudly."""
        missing = set(self.by_name) - set(genome)
        unknown = set(genome) - set(self.by_name)
        if missing or unknown:
            raise KeyError(
                f"genome mismatch: missing {sorted(missing)}, "
                f"unknown {sorted(unknown)}"
            )
        for gene in self.genes:
            if genome[gene.name] not in gene.values:
                raise ValueError(
                    f"gene {gene.name!r}: value "
                    f"{genome[gene.name]!r} not on the grid"
                )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def is_active(self, gene: Gene, genome: Genome) -> bool:
        """Does this gene affect the evaluated design of ``genome``?"""
        if gene.active_gene is None:
            return True
        return genome[gene.active_gene] == gene.active_value

    def effective(self, genome: Genome) -> Genome:
        """The genome with inactive (hidden) genes projected out.

        This is the *cacheable identity*: two genomes with the same
        effective form evaluate to byte-identical records, so the
        explorer fingerprints (and caches, and deduplicates) on it.
        """
        return {
            gene.name: genome[gene.name]
            for gene in self.genes if self.is_active(gene, genome)
        }

    def fingerprint(self, genome: Genome, extra: Any = None) -> str:
        """Stable SHA-256 of the effective genome (+ problem context).

        ``extra`` carries the fixed evaluation context (problem seed,
        deadline factor, scenario...) so the same genome evaluated
        against two different problems never shares a cache entry.
        """
        doc = json.dumps(
            {
                "version": EXPLORE_VERSION,
                "genome": self.effective(genome),
                "extra": extra,
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # GA operators (all RNG-driven; deterministic given the RNG state)
    # ------------------------------------------------------------------
    def mutate(
        self, genome: Genome, rng: random.Random, rate: float = 0.25,
    ) -> Genome:
        """Per-gene mutation: with probability ``rate`` re-draw a gene
        from its grid (excluding the current value, so a mutation that
        fires always changes something).  At least one gene mutates, so
        a child is never a silent clone of its parent."""
        child = dict(genome)
        mutable = [g for g in self.genes if len(g.values) >= 2]
        mutated = False
        for gene in self.genes:
            if rng.random() < rate:
                choices = [v for v in gene.values
                           if v != genome[gene.name]]
                if choices:
                    child[gene.name] = choices[
                        rng.randrange(len(choices))]
                    mutated = True
        if not mutated and mutable:
            gene = mutable[rng.randrange(len(mutable))]
            choices = [v for v in gene.values
                       if v != genome[gene.name]]
            child[gene.name] = choices[rng.randrange(len(choices))]
        return child

    def crossover(
        self, a: Genome, b: Genome, rng: random.Random,
    ) -> Genome:
        """Uniform crossover: each gene from parent ``a`` or ``b`` with
        equal probability, in declared gene order (so the RNG stream —
        and therefore the child — is independent of dict order)."""
        return {
            gene.name: (a if rng.random() < 0.5 else b)[gene.name]
            for gene in self.genes
        }


def _weight_grid(default: float) -> Tuple[float, ...]:
    """The tuning grid for one cost factor: off, half, default, double.

    ``default`` is always a member, so the all-defaults genome
    reproduces the historical cost function exactly.
    """
    return tuple(sorted({0.0, default * 0.5, default, default * 2.0}))


def design_space(
    generators: Sequence[str] = ("layered", "forkjoin"),
    n_tasks: Sequence[int] = (8, 12, 16),
    cost_models: Sequence[str] = ("default",),
    comm: Sequence[str] = ("default",),
    heuristics: Sequence[str] = (
        "greedy", "kl", "annealing", "vulcan", "cosyma", "gclp",
    ),
    weight_factors: Sequence[str] = ("modifiability", "concurrency"),
) -> SearchSpace:
    """The default explorer space over the registered axes.

    Every axis is validated against its registry so a typo fails at
    space construction, not four generations into a campaign.
    """
    for name, known, what in (
        (generators, GENERATORS, "generator"),
        (cost_models, COST_MODELS, "cost model"),
        (comm, COMM_MODELS, "comm model"),
        (heuristics, HEURISTICS, "heuristic"),
    ):
        for value in name:
            if value not in known:
                raise KeyError(
                    f"unknown {what} {value!r}; known: {sorted(known)}"
                )
    defaults = CostWeights()
    genes: List[Gene] = [
        Gene("generator", tuple(generators), generators[0]),
        Gene("n_tasks", tuple(n_tasks), n_tasks[0]),
        Gene("cost_model", tuple(cost_models), cost_models[0]),
        Gene("comm", tuple(comm), comm[0]),
        Gene("heuristic", tuple(heuristics), heuristics[0]),
    ]
    for factor in weight_factors:
        if not hasattr(defaults, factor):
            raise KeyError(f"unknown cost factor {factor!r}")
        default = getattr(defaults, factor)
        genes.append(Gene(
            f"{WEIGHT_PREFIX}{factor}", _weight_grid(default), default,
        ))
    for heuristic in heuristics:
        for knob in HEURISTIC_KNOBS[heuristic]:
            genes.append(Gene(
                f"{KNOB_PREFIX}{heuristic}.{knob.name}",
                knob.values, knob.default,
                active_gene="heuristic", active_value=heuristic,
            ))
    return SearchSpace(genes)


def split_genome(genome: Genome) -> Tuple[Dict[str, Any],
                                          Dict[str, Any],
                                          Dict[str, Any]]:
    """Split an (effective) genome into (core, knobs, weights).

    ``core`` holds the problem/heuristic axes, ``knobs`` the active
    heuristic's keyword arguments (prefix and heuristic name stripped),
    ``weights`` the tuning-weight factor overrides.
    """
    core: Dict[str, Any] = {}
    knobs: Dict[str, Any] = {}
    weights: Dict[str, Any] = {}
    for name, value in genome.items():
        if name.startswith(KNOB_PREFIX):
            _, _, qualified = name.partition(KNOB_PREFIX)
            _, _, knob = qualified.partition(".")
            knobs[knob] = value
        elif name.startswith(WEIGHT_PREFIX):
            weights[name[len(WEIGHT_PREFIX):]] = value
        else:
            core[name] = value
    return core, knobs, weights
