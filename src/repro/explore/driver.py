"""The closed-loop explorer: DoE-seeded GA with Pareto selection.

:func:`explore` turns the sweep/fault machinery from a measurement
tool into a search driver.  One run:

1. **measures dependability once** — a cached
   :func:`repro.fault.campaign.run_campaign` on the chosen scenario
   distills into a :class:`~repro.explore.evaluate.DependabilityModel`
   (skip the scenario and the search is 2-objective cost × latency);
2. **seeds generation 0** from a fractional-factorial DoE design
   (:mod:`repro.explore.doe`);
3. **evaluates populations** through the exact execution discipline
   the engines already trust — deduplicated by effective-genome
   fingerprint, served from the :class:`~repro.sweep.cache.ResultCache`
   / :class:`~repro.campaign.store.CampaignStore` when warm, fanned
   over :func:`repro.sweep.engine.pool_map` (or the durable campaign
   service when the cache is a store) when cold;
4. **selects** by non-dominated sort + crowding distance over the
   *entire archive* (elitist: the front can only grow, so each
   generation is provably no worse than its DoE seed — asserted by
   test as hypervolume monotonicity);
5. **breeds** the next population with seeded tournament selection,
   uniform crossover, and per-gene grid mutation.

Determinism is the contract everything else hangs on: one
``random.Random(ga_seed)`` drives every stochastic choice in a fixed
call order, archive insertion follows population order (never
completion order), every sum/sort is explicitly keyed — so the same
spec yields a byte-identical front JSON at any worker count, under any
PYTHONHASHSEED, cold or warm.

Telemetry rides the PR 3 rails: a ``span_tracer`` gets one span per
generation (plus worker-side spans merged onto pid lanes), a ``probe``
gets one convergence record per generation (front size, hypervolume,
best weighted-sum scalar), and ``metrics`` counts
computed/cached/deduplicated genomes so tests assert "the warm run
recomputed nothing" from counters, not timing.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cosim.metrics import MetricsRegistry
from repro.explore.doe import doe_population
from repro.explore.evaluate import (
    DependabilityModel,
    ProblemSpec,
    measure_dependability,
    objective_names,
    objectives_from_record,
    run_genome,
    run_genome_observed,
)
from repro.explore.genome import Genome, SearchSpace, design_space
from repro.explore.pareto import (
    crowding_distance,
    non_dominated_sort,
    normalized_hypervolume,
    objective_bounds,
    pareto_front,
    weighted_sum_rank,
)
from repro.obs.live import TelemetryEmitter
from repro.obs.spans import SpanTracer
from repro.partition.seeding import ProgressProbe
from repro.sweep.engine import CellTiming, pool_map

#: Schema version of the explorer's result JSON.
FRONT_VERSION = 1


@dataclass(frozen=True)
class ExploreSpec:
    """One fully-specified exploration (the unit of reproducibility).

    Everything that influences the search is in here — axes, GA
    parameters, the fixed problem context, the dependability scenario
    — so ``same spec ⇒ same front`` is a meaningful promise.
    """

    generators: Tuple[str, ...] = ("layered", "forkjoin")
    n_tasks: Tuple[int, ...] = (8, 12, 16)
    cost_models: Tuple[str, ...] = ("default",)
    comm: Tuple[str, ...] = ("default",)
    heuristics: Tuple[str, ...] = (
        "greedy", "kl", "annealing", "vulcan", "cosyma", "gclp",
    )
    weight_factors: Tuple[str, ...] = ("modifiability", "concurrency")
    problem: ProblemSpec = ProblemSpec()
    population: int = 16
    generations: int = 5
    ga_seed: int = 0
    mutation_rate: float = 0.25
    crossover_rate: float = 0.9
    #: fraction of each bred population drawn uniformly at random
    #: ("random immigrants") — keeps exploring the whole space while
    #: the elitist archive protects every refinement the GA finds, so
    #: the front's spread never falls behind pure random sampling
    immigrant_fraction: float = 0.25
    #: dependability scenario (None ⇒ 2-objective cost × latency)
    scenario: Optional[str] = None
    scenario_faults: int = 40
    scenario_seed: int = 7
    #: weighted-sum preference weights, one per objective (None ⇒ equal)
    mcdm_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not (0.0 <= self.mutation_rate <= 1.0):
            raise ValueError("mutation_rate must be in [0, 1]")
        if not (0.0 <= self.crossover_rate <= 1.0):
            raise ValueError("crossover_rate must be in [0, 1]")
        if not (0.0 <= self.immigrant_fraction <= 1.0):
            raise ValueError("immigrant_fraction must be in [0, 1]")

    def space(self) -> SearchSpace:
        """The search space these axes span."""
        return design_space(
            generators=self.generators,
            n_tasks=self.n_tasks,
            cost_models=self.cost_models,
            comm=self.comm,
            heuristics=self.heuristics,
            weight_factors=self.weight_factors,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generators": list(self.generators),
            "n_tasks": list(self.n_tasks),
            "cost_models": list(self.cost_models),
            "comm": list(self.comm),
            "heuristics": list(self.heuristics),
            "weight_factors": list(self.weight_factors),
            "problem": self.problem.to_dict(),
            "population": self.population,
            "generations": self.generations,
            "ga_seed": self.ga_seed,
            "mutation_rate": self.mutation_rate,
            "crossover_rate": self.crossover_rate,
            "immigrant_fraction": self.immigrant_fraction,
            "scenario": self.scenario,
            "scenario_faults": self.scenario_faults,
            "scenario_seed": self.scenario_seed,
            "mcdm_weights": (list(self.mcdm_weights)
                             if self.mcdm_weights is not None else None),
        }


@dataclass
class ExploreStats:
    """Volatile facts about one run — never serialized into the result
    (which must stay byte-identical across runs and machines)."""

    requested: int = 0      # genome evaluations asked for, all gens
    computed: int = 0       # actually ran a heuristic
    cache_hits: int = 0     # served from the result cache/store
    archive_hits: int = 0   # revisited by the GA within this run
    duplicates: int = 0     # duplicate fingerprints within a population
    workers: int = 1
    elapsed_s: float = 0.0

    def evaluation_savings(self) -> float:
        """Fraction of requested evaluations that cost nothing."""
        if not self.requested:
            return 0.0
        return 1.0 - self.computed / self.requested

    def summary(self) -> str:
        return (
            f"{self.requested} evaluations requested: "
            f"{self.computed} computed, {self.cache_hits} cached, "
            f"{self.archive_hits} archived, "
            f"{self.duplicates} duplicate "
            f"({self.evaluation_savings():.0%} saved), "
            f"workers={self.workers}, {self.elapsed_s:.2f}s"
        )


class ExploreResult:
    """Everything one exploration produced, in deterministic order."""

    def __init__(
        self,
        spec: ExploreSpec,
        objectives: Tuple[str, ...],
        bounds: Tuple[Tuple[float, ...], Tuple[float, ...]],
        model: Optional[DependabilityModel],
        rows: List[Dict[str, Any]],
        history: List[Dict[str, Any]],
    ) -> None:
        self.spec = spec
        self.objectives = objectives
        self.bounds = bounds
        self.model = model
        #: every evaluated design point, in archive (first-seen) order;
        #: each row carries fingerprint, record, and objective vector
        self.rows = rows
        self.history = history
        self.stats = ExploreStats()
        self.obs = None

    # ------------------------------------------------------------------
    def points(self) -> List[Tuple[float, ...]]:
        """Objective vectors, aligned with :attr:`rows`."""
        return [tuple(row["objectives"]) for row in self.rows]

    def front_rows(self) -> List[Dict[str, Any]]:
        """The non-dominated rows, sorted by (objectives, fingerprint).

        Ties — distinct genomes with identical objective vectors — all
        appear; the sort gives the table a total deterministic order.
        """
        points = self.points()
        members = pareto_front(points)
        rows = [self.rows[i] for i in members]
        rows.sort(key=lambda r: (tuple(r["objectives"]),
                                 r["fingerprint"]))
        return rows

    def ranking(self) -> List[Dict[str, Any]]:
        """Weighted-sum (MCDM) ranking over every evaluated point."""
        weights = self.spec.mcdm_weights
        scored = weighted_sum_rank(
            self.points(), weights=weights, bounds=self.bounds,
        )
        return [
            {
                "fingerprint": self.rows[i]["fingerprint"],
                "scalar": scalar,
            }
            for i, scalar in scored
        ]

    def hypervolume(self) -> float:
        """Front hypervolume under the run's fixed normalization."""
        return normalized_hypervolume(
            self.points(), self.bounds[0], self.bounds[1],
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON of the *model-deterministic* result: spec,
        objective names and bounds, dependability model, Pareto front,
        MCDM ranking, per-generation history, and every evaluated row.
        Byte-identical at any worker count, cold or warm."""
        return json.dumps(
            {
                "version": FRONT_VERSION,
                "spec": self.spec.to_dict(),
                "objectives": list(self.objectives),
                "bounds": [list(self.bounds[0]), list(self.bounds[1])],
                "model": (self.model.to_dict()
                          if self.model is not None else None),
                "front": self.front_rows(),
                "ranking": self.ranking(),
                "hypervolume": self.hypervolume(),
                "history": self.history,
                "rows": self.rows,
            },
            sort_keys=True, separators=(",", ":"),
        )

    def front_json(self) -> str:
        """Canonical JSON of the front alone (the CI artifact)."""
        return json.dumps(
            {
                "version": FRONT_VERSION,
                "objectives": list(self.objectives),
                "front": self.front_rows(),
                "hypervolume": self.hypervolume(),
            },
            sort_keys=True, separators=(",", ":"),
        )

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    # ------------------------------------------------------------------
    def front_table(self) -> str:
        """Human-readable front: one line per non-dominated design."""
        rows = self.front_rows()
        lines = [
            f"pareto front: {len(rows)} of {len(self.rows)} evaluated "
            f"designs  (objectives: {', '.join(self.objectives)})"
        ]
        header = (
            f"  {'heuristic':<10} {'generator':<9} {'n':>3} "
            + "".join(f"{name:>13}" for name in self.objectives)
            + "  genome"
        )
        lines.append(header)
        for row in rows:
            genome = row["record"]["genome"]
            knobs = {k.split(":", 1)[-1].split(".")[-1]: v
                     for k, v in genome.items() if ":" in k}
            objectives = "".join(
                f"{value:>13.3f}" for value in row["objectives"]
            )
            lines.append(
                f"  {genome['heuristic']:<10} {genome['generator']:<9} "
                f"{genome['n_tasks']:>3} {objectives}  "
                f"{json.dumps(knobs, sort_keys=True)}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return (
            f"ExploreResult({len(self.rows)} designs, "
            f"front {len(self.front_rows())}, "
            f"{len(self.history)} generations)"
        )


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def explore(
    spec: ExploreSpec,
    workers: int = 1,
    cache=None,
    metrics: Optional[MetricsRegistry] = None,
    span_tracer: Optional[SpanTracer] = None,
    probe: Optional[ProgressProbe] = None,
    recorder=None,
) -> ExploreResult:
    """Run the closed-loop GA/DoE search; return the evaluated archive.

    ``cache`` accepts a :class:`~repro.sweep.cache.ResultCache` or a
    :class:`~repro.campaign.store.CampaignStore` (duck-typed on
    ``.claim``, exactly like the engines) — with a store, genome
    evaluation runs on the durable campaign service and an interrupted
    exploration resumes without recomputing committed genomes.

    ``recorder`` arms the flight recorder: run marks, evaluation
    heartbeats, and one ``generation`` sample per selection round
    (front size, hypervolume, best scalar) stream to it live; samples
    never enter the archive, so the front JSON is byte-identical with
    or without a recorder.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    metrics = metrics if metrics is not None else MetricsRegistry()
    t0 = time.perf_counter()
    space = spec.space()
    stats = ExploreStats(workers=workers)

    emitter = None
    if recorder is not None:
        # distinct owner: in store mode the campaign coordinator (and
        # a workers=1 in-process shard) shares this pid
        emitter = TelemetryEmitter(recorder,
                                   owner=f"explore:{os.getpid()}",
                                   role="explore")
        emitter.emit("run", event="start",
                     population=spec.population,
                     generations=spec.generations, workers=workers)

    if span_tracer is not None:
        span_tracer.name_lane(span_tracer.pid, "explore driver")
        explore_span = span_tracer.span(
            "explore", population=spec.population,
            generations=spec.generations, workers=workers,
        )
        explore_span.__enter__()
    else:
        explore_span = None

    try:
        model: Optional[DependabilityModel] = None
        if spec.scenario is not None:
            if span_tracer is not None:
                with span_tracer.span("dependability_model",
                                      scenario=spec.scenario,
                                      faults=spec.scenario_faults):
                    model = measure_dependability(
                        spec.scenario, spec.scenario_faults,
                        spec.scenario_seed, workers=workers,
                        cache=cache, span_tracer=span_tracer,
                        metrics=metrics, batch=True,
                    )
            else:
                model = measure_dependability(
                    spec.scenario, spec.scenario_faults,
                    spec.scenario_seed, workers=workers, cache=cache,
                    metrics=metrics, batch=True,
                )

        extra = {"problem": spec.problem.to_dict()}
        archive_order: List[str] = []          # fingerprints, first-seen
        records: Dict[str, Dict[str, Any]] = {}
        full_genomes: Dict[str, Genome] = {}   # fp → full (hidden genes)

        evaluator = _Evaluator(
            space, spec, extra, workers, cache, metrics, span_tracer,
            stats, archive_order, records, full_genomes,
            recorder=recorder, emitter=emitter,
        )

        rng = random.Random(spec.ga_seed)
        history: List[Dict[str, Any]] = []
        bounds: Optional[Tuple[Tuple[float, ...],
                               Tuple[float, ...]]] = None
        best_scalar: Optional[float] = None

        population = doe_population(
            space, spec.population, seed=spec.ga_seed,
        )
        for generation in range(spec.generations):
            evaluator.evaluate(population, generation)

            points = [
                objectives_from_record(records[fp], model)
                for fp in archive_order
            ]
            if bounds is None:  # frozen at the DoE generation, so
                bounds = objective_bounds(points)  # hv is comparable
            hv = normalized_hypervolume(points, bounds[0], bounds[1])
            fronts = non_dominated_sort(points)
            ranked = weighted_sum_rank(
                points, weights=spec.mcdm_weights, bounds=bounds,
            )
            gen_best = ranked[0][1]
            improved = best_scalar is None or gen_best < best_scalar
            best_scalar = gen_best if improved else best_scalar
            history.append({
                "generation": generation,
                "archive": len(archive_order),
                "front_size": len(fronts[0]),
                "hypervolume": hv,
                "best_scalar": gen_best,
                "best_fingerprint": archive_order[ranked[0][0]],
            })
            metrics.counter("explore.generations").inc()
            if emitter is not None:
                emitter.emit("generation", **history[-1])
            if probe is not None:
                probe.record(
                    "explore", gen_best, best_cost=best_scalar,
                    accepted=improved, generation=generation,
                    front_size=len(fronts[0]), hypervolume=hv,
                    archive=len(archive_order),
                )
            if span_tracer is not None:
                span_tracer.event(
                    "generation.selected", generation=generation,
                    front_size=len(fronts[0]), hypervolume=hv,
                )
            if generation == spec.generations - 1:
                break
            parents = _select_parents(
                space, spec, fronts, points, archive_order,
                full_genomes,
            )
            population = _breed(space, spec, parents, rng)

        result = ExploreResult(
            spec=spec,
            objectives=objective_names(model),
            bounds=bounds,
            model=model,
            rows=[
                {
                    "fingerprint": fp,
                    "objectives": list(
                        objectives_from_record(records[fp], model)
                    ),
                    "record": records[fp],
                }
                for fp in archive_order
            ],
            history=history,
        )
    finally:
        if explore_span is not None:
            explore_span.__exit__(*sys.exc_info())

    stats.elapsed_s = time.perf_counter() - t0
    if emitter is not None:
        # the final beat carries ``exiting`` so post-mortems read a
        # completed exploration as exited, not dead (rate limiting
        # would otherwise swallow it on short runs)
        emitter.heartbeat(force=True, exiting=True,
                          done=stats.computed + stats.cache_hits,
                          cache_hits=stats.cache_hits)
        emitter.emit("run", event="finish",
                     archive=len(result.rows),
                     computed=stats.computed,
                     cache_hits=stats.cache_hits,
                     elapsed_s=stats.elapsed_s)
    result.stats = stats
    if span_tracer is not None or probe is not None:
        result.obs = {"span_tracer": span_tracer, "probe": probe,
                      "metrics": metrics}
    return result


def random_search(
    spec: ExploreSpec,
    evaluations: int,
    workers: int = 1,
    cache=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExploreResult:
    """The equal-budget baseline: uniform genomes, same evaluator.

    Draws ``evaluations`` genomes uniformly from the same space
    (seeded from ``spec.ga_seed``), evaluates them through the
    identical cache/pool discipline, and packages the result exactly
    like :func:`explore` — so front hypervolumes are directly
    comparable at equal budget.
    """
    if evaluations < 1:
        raise ValueError("evaluations must be >= 1")
    metrics = metrics if metrics is not None else MetricsRegistry()
    t0 = time.perf_counter()
    space = spec.space()
    stats = ExploreStats(workers=workers)
    model: Optional[DependabilityModel] = None
    if spec.scenario is not None:
        model = measure_dependability(
            spec.scenario, spec.scenario_faults, spec.scenario_seed,
            workers=workers, cache=cache, metrics=metrics, batch=True,
        )
    extra = {"problem": spec.problem.to_dict()}
    archive_order: List[str] = []
    records: Dict[str, Dict[str, Any]] = {}
    full_genomes: Dict[str, Genome] = {}
    evaluator = _Evaluator(
        space, spec, extra, workers, cache, metrics, None,
        stats, archive_order, records, full_genomes,
    )
    rng = random.Random(spec.ga_seed)
    population = [space.random_genome(rng) for _ in range(evaluations)]
    evaluator.evaluate(population, 0)
    points = [
        objectives_from_record(records[fp], model)
        for fp in archive_order
    ]
    bounds = objective_bounds(points)
    hv = normalized_hypervolume(points, bounds[0], bounds[1])
    result = ExploreResult(
        spec=spec,
        objectives=objective_names(model),
        bounds=bounds,
        model=model,
        rows=[
            {
                "fingerprint": fp,
                "objectives": list(
                    objectives_from_record(records[fp], model)
                ),
                "record": records[fp],
            }
            for fp in archive_order
        ],
        history=[{
            "generation": 0,
            "archive": len(archive_order),
            "front_size": len(pareto_front(points)),
            "hypervolume": hv,
            "best_scalar": weighted_sum_rank(
                points, weights=spec.mcdm_weights, bounds=bounds,
            )[0][1],
            "best_fingerprint": None,
        }],
    )
    stats.elapsed_s = time.perf_counter() - t0
    result.stats = stats
    return result


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
class _Evaluator:
    """Population evaluation with archive/cache dedup and fan-out.

    Archive insertion follows *population order*, never completion
    order, which is what keeps row order — and therefore every
    serialized table — independent of worker scheduling.
    """

    def __init__(self, space, spec, extra, workers, cache, metrics,
                 span_tracer, stats, archive_order, records,
                 full_genomes, recorder=None, emitter=None) -> None:
        self.space = space
        self.recorder = recorder
        self.emitter = emitter
        self.spec = spec
        self.extra = extra
        self.workers = workers
        self.cache = cache
        self.metrics = metrics
        self.span_tracer = span_tracer
        self.stats = stats
        self.archive_order = archive_order
        self.records = records
        self.full_genomes = full_genomes
        self.store_mode = cache is not None and hasattr(cache, "claim")
        self.observed = span_tracer is not None

    def evaluate(self, population: Sequence[Genome],
                 generation: int) -> None:
        """Ensure every genome of the population is in the archive."""
        metrics = self.metrics
        if self.span_tracer is not None:
            gen_span = self.span_tracer.span(
                "generation", generation=generation,
                population=len(population),
            )
            gen_span.__enter__()
        else:
            gen_span = None
        try:
            pending: List[Tuple[str, Dict[str, Any]]] = []
            seen_now = set()
            for genome in population:
                self.stats.requested += 1
                metrics.counter("explore.genomes.requested").inc()
                fp = self.space.fingerprint(genome, extra=self.extra)
                self.full_genomes.setdefault(fp, dict(genome))
                if fp in seen_now:
                    self.stats.duplicates += 1
                    metrics.counter("explore.genomes.duplicate").inc()
                    continue
                seen_now.add(fp)
                if fp in self.records:
                    self.stats.archive_hits += 1
                    metrics.counter("explore.archive.hits").inc()
                    continue
                cached = (self.cache.get(fp)
                          if self.cache is not None else None)
                if cached is not None:
                    self.records[fp] = cached
                    self.archive_order.append(fp)
                    self.stats.cache_hits += 1
                    metrics.counter("explore.cache.hits").inc()
                    continue
                metrics.counter("explore.cache.misses").inc()
                pending.append((fp, {
                    "fingerprint": fp,
                    "genome": self.space.effective(genome),
                    "problem": self.spec.problem.to_dict(),
                }))
            if pending:
                self._run_pending(pending)
        finally:
            if gen_span is not None:
                gen_span.__exit__(*sys.exc_info())

    def _run_pending(
        self, pending: List[Tuple[str, Dict[str, Any]]],
    ) -> None:
        results: Dict[str, Dict[str, Any]] = {}
        metrics = self.metrics

        def finish(fp: str, record: Dict[str, Any],
                   timing: CellTiming,
                   obs: Optional[Dict[str, Any]]) -> None:
            results[fp] = record
            self.stats.computed += 1
            if self.emitter is not None:
                self.emitter.heartbeat(
                    done=self.stats.computed + self.stats.cache_hits,
                    requested=self.stats.requested)
            metrics.counter("explore.genomes.computed").inc()
            metrics.histogram("explore.genome.elapsed_s").observe(
                timing.elapsed_s)
            if self.cache is not None and not self.store_mode:
                self.cache.put(fp, record)
            if obs is not None:
                metrics.merge(obs["metrics"])
                if self.span_tracer is not None:
                    lane = ("campaign shard" if self.store_mode
                            else "explore worker")
                    self.span_tracer.merge_snapshot(
                        obs["spans"], lane=f"{lane} {obs['pid']}",
                    )

        if self.store_mode:
            from repro.campaign.service import run_store_jobs

            def on_committed(fp: str, record: Dict[str, Any],
                             obs: Optional[Dict[str, Any]],
                             elapsed_s: float) -> None:
                finish(fp, record, CellTiming(elapsed_s), obs)

            runner = ("explore_observed" if self.observed
                      else "explore")
            run_store_jobs(self.cache, runner, pending, self.workers,
                           on_committed, metrics=metrics,
                           span_tracer=self.span_tracer,
                           recorder=self.recorder)
        else:
            fn = run_genome_observed if self.observed else run_genome

            def on_done(job: Dict[str, Any], out: Any,
                        timing: CellTiming) -> None:
                record, obs = out if self.observed else (out, None)
                finish(job["fingerprint"], record, timing, obs)

            pool_map(fn, [payload for _, payload in pending],
                     self.workers, on_done)

        # archive in population order, not completion order
        for fp, _ in pending:
            self.records[fp] = results[fp]
            self.archive_order.append(fp)


def _select_parents(
    space: SearchSpace,
    spec: ExploreSpec,
    fronts: List[List[int]],
    points: List[Tuple[float, ...]],
    archive_order: List[str],
    full_genomes: Dict[str, Genome],
) -> List[Genome]:
    """Elitist parent pool: best ``population`` archive members by
    (front rank, crowding distance, archive index) — a total,
    deterministic order."""
    chosen: List[int] = []
    for front in fronts:
        if len(chosen) >= spec.population:
            break
        crowd = crowding_distance([points[i] for i in front])
        order = sorted(
            range(len(front)),
            key=lambda k: (-crowd[k], front[k]),
        )
        for k in order:
            if len(chosen) >= spec.population:
                break
            chosen.append(front[k])
    return [
        full_genomes[archive_order[i]] for i in chosen
    ]


def _breed(
    space: SearchSpace,
    spec: ExploreSpec,
    parents: List[Genome],
    rng: random.Random,
) -> List[Genome]:
    """Next population: tournament + crossover + mutation + immigrants.

    Parents arrive best-first, so the binary-tournament winner is
    simply the lower index — rank-based selection with no re-scoring.
    The trailing ``immigrant_fraction`` of the population is drawn
    uniformly from the whole space instead: pure exploitation
    collapses the front's *spread*, and spread is half of what a
    Pareto front is for.
    """
    population: List[Genome] = []
    n = len(parents)
    immigrants = int(round(spec.population * spec.immigrant_fraction))
    for _ in range(spec.population - immigrants):
        a = min(rng.randrange(n), rng.randrange(n))
        b = min(rng.randrange(n), rng.randrange(n))
        if rng.random() < spec.crossover_rate:
            child = space.crossover(parents[a], parents[b], rng)
        else:
            child = dict(parents[a])
        population.append(
            space.mutate(child, rng, rate=spec.mutation_rate)
        )
    for _ in range(immigrants):
        population.append(space.random_genome(rng))
    return population
