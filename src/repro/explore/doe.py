"""Design-of-experiments seeding: two-level fractional factorials.

DAVOS seeds its genetic search from a fractional-factorial design
rather than a uniform random cloud: with k factors, a full two-level
factorial needs 2^k runs, but a 2^(k-p) *fraction* — assigning each
factor a distinct alias mask over b basis bits and reading its level
as the parity of ``run & mask`` — screens every main effect in only
``2^b`` runs (b = ⌈log2(k+1)⌉).  That is the classic resolution-III
construction: every factor column is orthogonal to every other, so the
seed population spreads over the corners of the design hypercube
instead of clumping.

Levels map onto each gene's grid extremes (first and last value — the
grids are ordered), and the all-defaults genome is appended as the
center point.  Everything is a pure function of the space and the
requested size: no RNG, no hashing, no iteration-order dependence.
"""

from __future__ import annotations

import random
from typing import List

from repro.explore.genome import Gene, Genome, SearchSpace


def _two_levels(gene: Gene):
    """The (lo, hi) screening levels of one gene: its grid extremes."""
    return gene.values[0], gene.values[-1]


def fractional_factorial(space: SearchSpace) -> List[Genome]:
    """The 2^(k-p) screening design over the space's genes.

    Returns ``2^b`` genomes (b = ⌈log2(k+1)⌉ for k multi-valued
    genes) plus the all-defaults center point.  Duplicates (possible
    when grids have fewer than two values) are removed preserving
    first-seen order.
    """
    varying = [g for g in space.genes if len(g.values) >= 2]
    k = len(varying)
    b = 1
    while (1 << b) - 1 < k:
        b += 1
    runs = 1 << b
    # alias masks: nonzero bit patterns in ascending order; the first b
    # are the basis columns (main effects), the rest alias interactions
    masks = list(range(1, k + 1))
    design: List[Genome] = []
    seen = set()

    def push(genome: Genome) -> None:
        key = tuple(genome[g.name] for g in space.genes)
        if key not in seen:
            seen.add(key)
            design.append(genome)

    for run in range(runs):
        genome = space.default_genome()
        for gene, mask in zip(varying, masks):
            lo, hi = _two_levels(gene)
            parity = bin(run & mask).count("1") & 1
            genome[gene.name] = hi if parity else lo
        push(genome)
    push(space.default_genome())
    return design


def one_factor_at_a_time(space: SearchSpace) -> List[Genome]:
    """The OFAT screening design: every level of every gene, alone.

    Two-level factorials only visit each grid's *extremes* — a
    categorical gene like ``heuristic`` would never seed its interior
    levels (kl, annealing, ...), and whatever front region those levels
    own would be invisible to the search until a lucky mutation.  OFAT
    fixes that: for each varying gene, one genome per level with every
    other gene at its default.  Includes the all-defaults center point;
    pure function of the space, no RNG.
    """
    design: List[Genome] = [space.default_genome()]
    seen = {tuple(design[0][g.name] for g in space.genes)}
    for gene in space.genes:
        for value in gene.values:
            genome = space.default_genome()
            genome[gene.name] = value
            key = tuple(genome[g.name] for g in space.genes)
            if key not in seen:
                seen.add(key)
                design.append(genome)
    return design


def doe_population(
    space: SearchSpace, size: int, seed: int,
) -> List[Genome]:
    """A seed population of exactly ``size`` genomes.

    Level coverage first (:func:`one_factor_at_a_time` — every level
    of every gene gets screened), then the fractional-factorial
    corners (extreme-level interactions), then seeded uniform draws
    for any remaining slots — each stage skipping effective duplicates
    so the GA's first generation wastes no evaluations.
    """
    if size < 1:
        raise ValueError("population size must be >= 1")
    design: List[Genome] = []
    seen = set()
    # corners/levels that differ only in hidden genes collapse to one
    # effective genome — keep the first of each, they evaluate
    # identically and would waste population slots
    for genome in (one_factor_at_a_time(space)
                   + fractional_factorial(space)):
        fp = space.fingerprint(genome)
        if fp not in seen and len(design) < size:
            seen.add(fp)
            design.append(genome)
    rng = random.Random(seed)
    attempts = 0
    while len(design) < size and attempts < size * 50:
        genome = space.random_genome(rng)
        attempts += 1
        fp = space.fingerprint(genome)
        if fp in seen:
            continue
        seen.add(fp)
        design.append(genome)
    while len(design) < size:  # tiny spaces: allow duplicates
        design.append(space.random_genome(rng))
    return design
