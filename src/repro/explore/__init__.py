"""Closed-loop design-space exploration (ROADMAP item 2).

The explorer turns the repo's measurement machinery — sweep engine,
result cache, campaign store, fault campaigns, observability — into a
search loop: a DoE-seeded genetic algorithm over (graph parameters,
heuristic + knobs, tuning weights), selecting by Pareto dominance and
reporting fronts, weighted-sum rankings, and per-generation
convergence telemetry.  Every piece is deterministic by construction:
same spec ⇒ byte-identical front JSON at any worker count, cold or
warm, under any PYTHONHASHSEED.
"""

from repro.explore.doe import doe_population, fractional_factorial
from repro.explore.driver import (
    FRONT_VERSION,
    ExploreResult,
    ExploreSpec,
    ExploreStats,
    explore,
    random_search,
)
from repro.explore.evaluate import (
    OBJECTIVES_2D,
    OBJECTIVES_3D,
    DependabilityModel,
    ProblemSpec,
    genome_config,
    measure_dependability,
    objective_names,
    objectives_from_record,
    reference_cost,
    run_genome,
    run_genome_observed,
)
from repro.explore.genome import (
    EXPLORE_VERSION,
    Gene,
    Genome,
    SearchSpace,
    design_space,
    split_genome,
)
from repro.explore.pareto import (
    crowding_distance,
    dominates,
    hypervolume,
    non_dominated_sort,
    normalize,
    normalized_hypervolume,
    objective_bounds,
    pareto_front,
    weighted_sum_rank,
)

__all__ = [
    "FRONT_VERSION",
    "EXPLORE_VERSION",
    "OBJECTIVES_2D",
    "OBJECTIVES_3D",
    "DependabilityModel",
    "ExploreResult",
    "ExploreSpec",
    "ExploreStats",
    "Gene",
    "Genome",
    "ProblemSpec",
    "SearchSpace",
    "crowding_distance",
    "design_space",
    "doe_population",
    "dominates",
    "explore",
    "fractional_factorial",
    "genome_config",
    "hypervolume",
    "measure_dependability",
    "non_dominated_sort",
    "normalize",
    "normalized_hypervolume",
    "objective_bounds",
    "objective_names",
    "objectives_from_record",
    "pareto_front",
    "random_search",
    "reference_cost",
    "run_genome",
    "run_genome_observed",
    "split_genome",
    "weighted_sum_rank",
]
