"""Pareto dominance, fronts, MCDM ranking, and hypervolume.

Everything in this module is a pure function over tuples of floats
(**minimization** objectives throughout), with explicitly deterministic
tie-breaking: functions that order points order them by (objective
vector, input index), so the same multiset of points produces the same
output bytes regardless of input permutation history, hash seed, or
platform.  Summations iterate in sorted order — float addition is not
associative, and an unordered sum is exactly the class of
PYTHONHASHSEED bug that bit ``cost_terms`` in PR 6.

The selection machinery is the DAVOS-style pair:

* :func:`pareto_front` / :func:`non_dominated_sort` /
  :func:`crowding_distance` — multi-objective (NSGA-II-shaped)
  selection;
* :func:`weighted_sum_rank` — the scalarized, min-max-normalized
  weighted-sum ranking used when the caller wants one recommended
  design instead of a front.

:func:`hypervolume` (exact, 2-D and 3-D) is the front-quality scalar
the benchmarks gate on: volume dominated between the front and a
reference point, after normalization to the unit cube.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` iff it is no worse in every objective and
    strictly better in at least one.  Equal vectors never dominate
    each other — ties coexist on a front.
    """
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(points: Sequence[Point]) -> List[int]:
    """Indices of the non-dominated points, in ascending index order.

    Exactly the non-dominated subset: no returned point is dominated
    by any input point, and every input point not returned is
    dominated by some input point.  Duplicated vectors are either all
    on the front or all off it.
    """
    n = len(points)
    front: List[int] = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if j != i and dominates(points[j], points[i]):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def non_dominated_sort(points: Sequence[Point]) -> List[List[int]]:
    """Successive Pareto fronts: front 0 is :func:`pareto_front`, front
    1 is the front of the remainder, and so on.  Every index appears in
    exactly one front; indices within a front ascend."""
    remaining = list(range(len(points)))
    fronts: List[List[int]] = []
    while remaining:
        sub = [points[i] for i in remaining]
        members = pareto_front(sub)
        front = [remaining[k] for k in members]
        fronts.append(front)
        taken = set(front)
        remaining = [i for i in remaining if i not in taken]
    return fronts


def crowding_distance(points: Sequence[Point]) -> List[float]:
    """NSGA-II crowding distance of each point within its own set.

    Boundary points (extreme in any objective) get ``inf``; interior
    points get the normalized side-length sum of the surrounding
    hypercuboid.  Ties in an objective are ordered by input index, so
    the assignment is deterministic under permutation of equal values.
    """
    n = len(points)
    if n == 0:
        return []
    dims = len(points[0])
    distance = [0.0] * n
    for d in range(dims):
        order = sorted(range(n), key=lambda i: (points[i][d], i))
        lo = points[order[0]][d]
        hi = points[order[-1]][d]
        distance[order[0]] = float("inf")
        distance[order[-1]] = float("inf")
        span = hi - lo
        if span <= 0.0:
            continue
        for k in range(1, n - 1):
            i = order[k]
            if distance[i] == float("inf"):
                continue
            gap = points[order[k + 1]][d] - points[order[k - 1]][d]
            distance[i] += gap / span
    return distance


def objective_bounds(
    points: Sequence[Point],
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Per-objective (min, max) over a non-empty point set."""
    if not points:
        raise ValueError("no points to bound")
    dims = len(points[0])
    lo = tuple(min(p[d] for p in points) for d in range(dims))
    hi = tuple(max(p[d] for p in points) for d in range(dims))
    return lo, hi


def normalize(
    point: Sequence[float],
    lo: Sequence[float],
    hi: Sequence[float],
) -> Point:
    """Min-max normalize into [0, 1], clipping values outside bounds.

    A degenerate objective (``lo == hi``) maps to 0.0 — it cannot
    distinguish points, so it contributes nothing either way.
    """
    out = []
    for x, a, b in zip(point, lo, hi):
        span = b - a
        if span <= 0.0:
            out.append(0.0)
        else:
            out.append(min(1.0, max(0.0, (x - a) / span)))
    return tuple(out)


def weighted_sum_rank(
    points: Sequence[Point],
    weights: Optional[Sequence[float]] = None,
    bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
) -> List[Tuple[int, float]]:
    """Scalarize and rank: best (lowest weighted sum) first.

    Objectives are min-max normalized (over ``bounds`` when given,
    else over the point set itself) so weights express *preference*,
    not unit conversion.  Returns ``(index, scalar)`` pairs sorted by
    (scalar, index) — a total, deterministic order.
    """
    if not points:
        return []
    dims = len(points[0])
    if weights is None:
        weights = (1.0,) * dims
    if len(weights) != dims:
        raise ValueError(
            f"{len(weights)} weights for {dims}-objective points"
        )
    lo, hi = bounds if bounds is not None else objective_bounds(points)
    scored = []
    for i, p in enumerate(points):
        norm = normalize(p, lo, hi)
        scalar = 0.0
        for w, x in zip(weights, norm):
            scalar += w * x
        scored.append((i, scalar))
    scored.sort(key=lambda pair: (pair[1], pair[0]))
    return scored


# ----------------------------------------------------------------------
# hypervolume (exact, 2-D / 3-D)
# ----------------------------------------------------------------------
def hypervolume(
    points: Sequence[Point],
    reference: Sequence[float],
) -> float:
    """Exact dominated hypervolume w.r.t. ``reference`` (minimization).

    Points at or beyond the reference in any objective contribute
    nothing.  Supports 1, 2, and 3 objectives — the explorer's
    objective spaces — exactly; more would need a different algorithm.
    Adding points can only grow the value, which is what makes the
    per-generation "GA never worse than its DoE seed" invariant
    testable as hypervolume monotonicity.
    """
    if not points:
        return 0.0
    dims = len(reference)
    for p in points:
        if len(p) != dims:
            raise ValueError(
                f"point dimension {len(p)} != reference {dims}"
            )
    # keep only points strictly inside the reference box, deduplicated,
    # and only the non-dominated ones (dominated points add no volume)
    inside = sorted({
        tuple(p) for p in points
        if all(x < r for x, r in zip(p, reference))
    })
    if not inside:
        return 0.0
    keep = [inside[i] for i in pareto_front(inside)]
    keep.sort()
    if dims == 1:
        return reference[0] - min(p[0] for p in keep)
    if dims == 2:
        return _hv2(keep, reference)
    if dims == 3:
        return _hv3(keep, reference)
    raise NotImplementedError(
        f"hypervolume supports 1-3 objectives, got {dims}"
    )


def _hv2(front: List[Point], reference: Sequence[float]) -> float:
    """2-D: sweep x ascending; each point owns a rectangle up to its
    successor's y-ceiling.  ``front`` is non-dominated and sorted, so
    y strictly descends along the sweep."""
    volume = 0.0
    prev_y = reference[1]
    for x, y in front:
        volume += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return volume


def _hv3(front: List[Point], reference: Sequence[float]) -> float:
    """3-D: slice along z.  Between consecutive z-levels the dominated
    area in (x, y) is the 2-D hypervolume of the points with z at or
    below the slice floor."""
    zs = sorted({p[2] for p in front})
    volume = 0.0
    for k, z in enumerate(zs):
        depth = (zs[k + 1] if k + 1 < len(zs) else reference[2]) - z
        layer = sorted({(p[0], p[1]) for p in front if p[2] <= z})
        layer = [layer[i] for i in pareto_front(layer)]
        layer.sort()
        volume += _hv2(layer, reference) * depth
    return volume


def normalized_hypervolume(
    points: Sequence[Point],
    lo: Sequence[float],
    hi: Sequence[float],
    reference: float = 1.1,
) -> float:
    """Hypervolume in the unit-normalized space against a fixed
    reference corner (default 1.1 per axis, so boundary points still
    contribute).  With fixed ``lo``/``hi`` this is comparable across
    generations and runs; values fall in [0, reference**dims]."""
    if not points:
        return 0.0
    dims = len(points[0])
    norm = [normalize(p, lo, hi) for p in points]
    return hypervolume(norm, (reference,) * dims)
