"""Evaluating one genome: partition record + dependability objective.

One genome evaluation is deliberately shaped like one sweep cell: the
genome's core axes are poured into a :class:`repro.sweep.config.
SweepConfig` (so the workload graph, deadline, budget, and heuristic
seed derivation are *identical* to what the sweep engine would
produce for the same axes), the chosen heuristic runs with the
genome's knob and tuning-weight genes applied, and the result is a
plain JSON record that is a pure function of the payload —
cacheable, resumable, and byte-identical wherever it runs.

Objectives (all minimized) are computed **parent-side** from the
record, never inside workers:

* ``cost`` — the six-factor cost under *fixed reference weights*
  (recomputed from the record's raw ``cost_terms``, so tuning-weight
  genes steer the heuristic without bending the yardstick);
* ``latency_ns`` — the schedule's end-to-end latency;
* ``exposure`` — ``1 − detection coverage`` under a
  :class:`DependabilityModel` built from a real
  :func:`repro.fault.campaign.run_campaign` run: the campaign
  measures per-surface detection coverage once (cached), and each
  design point weights those coverages by how much of *its* partition
  lives on each surface (hardware tasks ↔ signal/register faults,
  software tasks ↔ CPU-state faults, boundary traffic ↔ message
  faults).  Dependability-aware partitioning, with the fault
  subsystem as the objective rather than a report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cosim.metrics import MetricsRegistry
from repro.explore.genome import Genome, SearchSpace, split_genome
from repro.obs.spans import SpanTracer
from repro.partition import HEURISTICS, CostWeights
from repro.partition.knobs import validate_knobs
from repro.sweep.config import SweepConfig

#: Objective vector names, in order, for each model arity.
OBJECTIVES_2D = ("cost", "latency_ns")
OBJECTIVES_3D = ("cost", "latency_ns", "exposure")


@dataclass(frozen=True)
class ProblemSpec:
    """The fixed (non-searched) half of the evaluation context.

    ``seed`` pins the workload instance per (generator, n_tasks) pair —
    the explorer searches *design* axes, not luck.  The spec rides
    inside every genome fingerprint, so changing it invalidates
    nothing silently.
    """

    seed: int = 0
    deadline_factor: Optional[float] = 0.7
    area_budget_factor: Optional[float] = 0.5
    hw_parallelism: Optional[int] = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "deadline_factor": self.deadline_factor,
            "area_budget_factor": self.area_budget_factor,
            "hw_parallelism": self.hw_parallelism,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProblemSpec":
        return cls(**data)


def genome_config(genome: Genome, problem: ProblemSpec) -> SweepConfig:
    """The sweep-cell view of a genome's core axes.

    Reusing :class:`SweepConfig` is what guarantees the explorer and
    the sweep engine see byte-identical workloads for the same axes —
    same graph seed derivation, same deadline/budget scaling.
    """
    core, _, _ = split_genome(genome)
    return SweepConfig(
        generator=core["generator"],
        n_tasks=core["n_tasks"],
        cost_model=core["cost_model"],
        heuristic=core["heuristic"],
        seed=problem.seed,
        comm=core["comm"],
        deadline_factor=problem.deadline_factor,
        area_budget_factor=problem.area_budget_factor,
        hw_parallelism=problem.hw_parallelism,
    )


def run_genome(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one genome payload (top-level: pool workers pickle it).

    ``payload`` is plain JSON: ``{"genome": <effective genome>,
    "problem": <ProblemSpec dict>}`` — the same dict the campaign
    store queues, so pool mode and store mode run identical code.
    """
    from repro.partition.cost import cost_terms, partition_cost

    genome: Genome = payload["genome"]
    problem_spec = ProblemSpec.from_dict(payload["problem"])
    core, knobs, weight_genes = split_genome(genome)
    validate_knobs(core["heuristic"], knobs)
    config = genome_config(genome, problem_spec)
    problem = config.build_problem()
    tuning = CostWeights(**weight_genes) if weight_genes \
        else CostWeights()
    heuristic = HEURISTICS[core["heuristic"]]
    result = heuristic(
        problem, weights=tuning, seed=config.heuristic_seed(), **knobs,
    )
    evaluation = result.evaluation
    raw = cost_terms(problem, evaluation, result.hw_tasks)
    return {
        "genome": dict(sorted(genome.items())),
        "algorithm": result.algorithm,
        "n_tasks": len(problem.graph),
        "hw_tasks": sorted(result.hw_tasks),
        "n_hw": len(result.hw_tasks),
        "n_sw": len(result.sw_tasks),
        "tuned_cost": result.cost,
        "cost_terms": {k: raw[k] for k in sorted(raw)},
        "latency_ns": evaluation.latency_ns,
        "hw_area": evaluation.hw_area,
        "sw_size": evaluation.sw_size,
        "comm_ns": evaluation.comm_ns,
        "overlap_fraction": evaluation.overlap_fraction,
        "deadline_met": evaluation.deadline_met,
        "area_feasible": result.area_feasible,
        "feasible": result.feasible,
        "moves_evaluated": result.moves_evaluated,
    }


def run_genome_observed(
    payload: Dict[str, Any],
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """:func:`run_genome` plus the worker-side observability payload.

    Mirrors :func:`repro.sweep.engine.run_cell_observed`: the record
    is byte-identical to the unobserved path; spans and metric deltas
    ride alongside for the parent to merge onto its timeline.
    """
    spans = SpanTracer()
    spans.name_lane(spans.pid, f"explore worker {os.getpid()}")
    metrics = MetricsRegistry()
    genome: Genome = payload["genome"]
    with spans.span("genome", heuristic=genome.get("heuristic"),
                    generator=genome.get("generator")):
        record = run_genome(payload)
    metrics.counter("explore.worker.genomes").inc()
    metrics.counter(
        f"explore.heuristic.{record['algorithm']}.genomes").inc()
    obs = {
        "pid": os.getpid(),
        "spans": spans.snapshot(),
        "metrics": metrics.snapshot(),
    }
    return record, obs


def reference_cost(record: Dict[str, Any],
                   weights: Optional[CostWeights] = None) -> float:
    """The scalar cost objective under fixed reference weights.

    Summed in sorted factor order — float addition is non-associative
    and this number lands in byte-compared front tables.
    """
    weights = weights if weights is not None else CostWeights()
    total = 0.0
    for factor in sorted(record["cost_terms"]):
        total += getattr(weights, factor) * record["cost_terms"][factor]
    return total


# ----------------------------------------------------------------------
# the dependability objective
# ----------------------------------------------------------------------
#: fault-kind prefixes per surface (see repro.fault.spec KINDS).
_HW_KINDS = ("signal_flip", "reg_flip")
_SW_KINDS = ("cpu_reg_flip", "cpu_pc_flip", "cpu_flag_flip")
_COMM_KINDS = (
    "msg_drop", "msg_dup", "msg_delay", "msg_reorder", "msg_corrupt",
)


@dataclass(frozen=True)
class DependabilityModel:
    """Campaign-measured detection coverage per injection surface.

    ``coverage_*`` is ``detected / (detected + sdc)`` over the
    campaign's faults on that surface (1.0 when the surface exposed
    nothing — consistent with
    :meth:`repro.fault.campaign.CampaignResult.detection_coverage`).
    :meth:`exposure` weights the surfaces by where a concrete design
    point's functionality lives.
    """

    scenario: str
    faults: int
    coverage_hw: float
    coverage_sw: float
    coverage_comm: float

    @classmethod
    def from_campaign(cls, result) -> "DependabilityModel":
        """Distill a :class:`~repro.fault.campaign.CampaignResult`."""
        by_kind = result.by_kind()

        def coverage(kinds) -> float:
            detected = sum(
                by_kind[k]["detected"] for k in kinds if k in by_kind
            )
            sdc = sum(
                by_kind[k]["sdc"] for k in kinds if k in by_kind
            )
            exposed = detected + sdc
            return detected / exposed if exposed else 1.0

        return cls(
            scenario=result.scenario,
            faults=len(result.rows),
            coverage_hw=coverage(_HW_KINDS),
            coverage_sw=coverage(_SW_KINDS),
            coverage_comm=coverage(_COMM_KINDS),
        )

    def exposure(self, record: Dict[str, Any]) -> float:
        """``1 − coverage`` of one design point, in [0, 1].

        Surface weights come from the partition itself: the fraction
        of tasks in hardware weights the hardware-fault coverage, the
        software fraction weights CPU-fault coverage, and the
        boundary-communication share of the schedule
        (``comm_ns / latency_ns``) weights message-fault coverage.
        A design that localizes functionality on well-covered surfaces
        scores lower exposure — which is precisely the co-design
        trade this objective exists to reward.
        """
        n = max(1, record["n_hw"] + record["n_sw"])
        latency = record["latency_ns"]
        w_comm = min(1.0, record["comm_ns"] / latency) \
            if latency > 0 else 0.0
        w_hw = (record["n_hw"] / n) * (1.0 - w_comm)
        w_sw = (record["n_sw"] / n) * (1.0 - w_comm)
        total = w_hw + w_sw + w_comm
        if total <= 0.0:
            return 0.0
        coverage = (
            w_hw * self.coverage_hw
            + w_sw * self.coverage_sw
            + w_comm * self.coverage_comm
        ) / total
        return 1.0 - coverage

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "faults": self.faults,
            "coverage_hw": self.coverage_hw,
            "coverage_sw": self.coverage_sw,
            "coverage_comm": self.coverage_comm,
        }


def measure_dependability(
    scenario: str,
    n_faults: int,
    seed: int,
    workers: int = 1,
    cache=None,
    span_tracer: Optional[SpanTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    batch: bool = False,
) -> DependabilityModel:
    """Run (or replay from cache) the coverage-measuring campaign.

    The campaign's cells land in the same cache/store the genome
    records use — fault fingerprints and genome fingerprints are
    distinct SHA-256 keys — so a warm explorer re-run recomputes
    neither genomes nor faults.  ``batch`` opts software-only
    scenarios into the vectorized batch tier (DESIGN §14); the model
    is byte-identical either way.
    """
    from repro.fault import sample_faults
    from repro.fault.campaign import run_campaign
    from repro.fault.scenarios import SCENARIOS

    faults = sample_faults(
        SCENARIOS[scenario].targets, n_faults, seed=seed,
    )
    result = run_campaign(
        scenario, faults, workers=workers, cache=cache,
        span_tracer=span_tracer, metrics=metrics, batch=batch,
    )
    return DependabilityModel.from_campaign(result)


def objectives_from_record(
    record: Dict[str, Any],
    model: Optional[DependabilityModel] = None,
    weights: Optional[CostWeights] = None,
) -> Tuple[float, ...]:
    """The minimization objective vector of one evaluated genome.

    2-D (cost, latency) without a dependability model, 3-D
    (cost, latency, exposure) with one.  Pure parent-side function of
    JSON-stable inputs: fronts never depend on worker count.
    """
    cost = reference_cost(record, weights)
    latency = record["latency_ns"]
    if model is None:
        return (cost, latency)
    return (cost, latency, model.exposure(record))


def objective_names(model: Optional[DependabilityModel]) -> Tuple[str, ...]:
    """The names matching :func:`objectives_from_record`'s vector."""
    return OBJECTIVES_3D if model is not None else OBJECTIVES_2D
