"""The structured sweep result table and the comparison report.

A :class:`SweepResult` is an ordered list of cell records (plain
dicts, one per grid cell, in grid order).  Serialization is canonical —
sorted keys, fixed separators — so "same grid, same seeds ⇒
byte-identical table" is a testable guarantee, not an aspiration.

:meth:`SweepResult.comparison_report` regenerates the Section 5-style
criteria table over arbitrary workloads: one row per heuristic with the
comparison criteria the paper's survey used informally — solution cost,
latency, area, communication, constraint satisfaction — measured over
however many synthetic problems the grid swept.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

TABLE_VERSION = 1


class SweepResult:
    """An ordered table of sweep cell records."""

    def __init__(self, records: List[Dict[str, Any]]) -> None:
        self.records = list(records)
        #: Set by the engine: volatile run statistics (not serialized).
        self.stats = None
        #: Set by the engine on observed runs: the merged observability
        #: handles (``span_tracer``, ``probe``, ``metrics``).  Volatile,
        #: never serialized — :meth:`to_json` stays byte-identical with
        #: or without observation.
        self.obs = None

    # ------------------------------------------------------------------
    # serialization (canonical, byte-stable)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Canonical JSON: identical grids serialize identically."""
        return json.dumps(
            {"version": TABLE_VERSION, "records": self.records},
            sort_keys=True, separators=(",", ":"),
        )

    def write_json(self, path) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Rebuild from :meth:`to_json` output."""
        doc = json.loads(text)
        if doc.get("version") != TABLE_VERSION:
            raise ValueError(
                f"table version {doc.get('version')!r} != {TABLE_VERSION}"
            )
        return cls(doc["records"])

    @classmethod
    def load(cls, path) -> "SweepResult":
        """Read a table previously written with :meth:`write_json`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    # groupings
    # ------------------------------------------------------------------
    def heuristics(self) -> List[str]:
        """Heuristic names present, sorted."""
        return sorted({r["config"]["heuristic"] for r in self.records})

    def by_heuristic(self) -> Dict[str, List[Dict[str, Any]]]:
        """Records grouped by heuristic."""
        out: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.records:
            out.setdefault(record["config"]["heuristic"], []).append(record)
        return out

    def by_problem(self) -> Dict[str, List[Dict[str, Any]]]:
        """Records grouped by problem key (same graph + constraints)."""
        out: Dict[str, List[Dict[str, Any]]] = {}
        for record in self.records:
            out.setdefault(record["problem_key"], []).append(record)
        return out

    def wins(self) -> Dict[str, int]:
        """Per heuristic: on how many problems it produced the lowest
        cost (ties broken by heuristic name, so counts are stable)."""
        counts = {name: 0 for name in self.heuristics()}
        for records in self.by_problem().values():
            if len(records) < 2:
                continue
            winner = min(
                records,
                key=lambda r: (r["cost"], r["config"]["heuristic"]),
            )
            counts[winner["config"]["heuristic"]] += 1
        return counts

    # ------------------------------------------------------------------
    # the comparison report
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-heuristic aggregates over every record."""
        wins = self.wins()
        out: Dict[str, Dict[str, float]] = {}
        for name, records in sorted(self.by_heuristic().items()):
            n = len(records)
            out[name] = {
                "cells": n,
                "wins": wins.get(name, 0),
                "mean_cost": _mean(r["cost"] for r in records),
                "mean_latency_ns": _mean(r["latency_ns"] for r in records),
                "mean_hw_area": _mean(r["hw_area"] for r in records),
                "mean_comm_ns": _mean(r["comm_ns"] for r in records),
                "mean_overlap": _mean(
                    r["overlap_fraction"] for r in records
                ),
                "deadline_met_rate": _mean(
                    float(r["deadline_met"]) for r in records
                ),
                "feasible_rate": _mean(
                    float(r["feasible"]) for r in records
                ),
                "mean_moves": _mean(
                    r["moves_evaluated"] for r in records
                ),
            }
        return out

    def comparison_report(self) -> str:
        """The Section 5-style criteria table, over the swept workloads.

        One row per heuristic; the columns are the comparison criteria
        (cost, latency, area, communication, realized concurrency,
        constraint satisfaction, search effort) averaged over every
        problem the grid generated.
        """
        summary = self.summary()
        if not summary:
            return "(empty sweep)"
        header = (
            f"{'heuristic':<12} {'cells':>5} {'wins':>5} {'cost':>10} "
            f"{'latency':>10} {'area':>10} {'comm':>8} {'ovlp':>5} "
            f"{'dl-met':>7} {'feas':>6} {'moves':>8}"
        )
        lines = [header, "-" * len(header)]
        for name, row in summary.items():
            lines.append(
                f"{name:<12} {row['cells']:>5.0f} {row['wins']:>5.0f} "
                f"{row['mean_cost']:>10.1f} "
                f"{row['mean_latency_ns']:>10.1f} "
                f"{row['mean_hw_area']:>10.0f} "
                f"{row['mean_comm_ns']:>8.1f} "
                f"{row['mean_overlap']:>5.2f} "
                f"{row['deadline_met_rate']:>6.0%} "
                f"{row['feasible_rate']:>5.0%} "
                f"{row['mean_moves']:>8.0f}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SweepResult):
            return NotImplemented
        return self.records == other.records

    def __repr__(self) -> str:
        return (
            f"SweepResult({len(self.records)} records, "
            f"{len(self.heuristics())} heuristics)"
        )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
