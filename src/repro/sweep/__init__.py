"""Parallel experiment sweeps over the partitioning framework.

The throughput layer the ROADMAP's north star asks for: apply the
paper's Section 3.3/Section 5 comparison machinery to *many*
methodology instances at once, instead of one figure-benchmark at a
time.

* :mod:`repro.sweep.config` — sweep cells (generator × cost model ×
  heuristic × seed), stable fingerprints, deterministic seed
  derivation, grid expansion;
* :mod:`repro.sweep.engine` — the ``ProcessPoolExecutor`` fan-out with
  result caching and PR 1 metrics instrumentation;
* :mod:`repro.sweep.cache` — the fingerprint-keyed on-disk JSON cache;
* :mod:`repro.sweep.table` — the canonical result table and the
  Section 5-style comparison report;
* :mod:`repro.sweep.differential` — the cross-heuristic invariant
  harness that makes the parallel numbers trustworthy.

Quick tour::

    from repro.sweep import ResultCache, expand_grid, run_sweep

    grid = expand_grid(
        generators=("layered", "forkjoin"),
        heuristics=("greedy", "kl", "vulcan", "cosyma"),
        seeds=range(8),
    )
    table = run_sweep(grid, workers=4, cache=ResultCache(".sweep-cache"))
    print(table.comparison_report())
"""

from repro.sweep.config import (
    COMM_MODELS,
    CONFIG_VERSION,
    SweepConfig,
    expand_grid,
    parse_seed_spec,
)
from repro.sweep.cache import (
    CACHE_VERSION,
    CacheVersionError,
    ResultCache,
)
from repro.sweep.table import SweepResult
from repro.sweep.engine import (
    CellTiming,
    PoolJobError,
    SweepCellError,
    SweepStats,
    pool_map,
    run_cell,
    run_cell_observed,
    run_sweep,
)
from repro.sweep.differential import (
    DifferentialReport,
    check_result,
    graph_signature,
    random_problem_config,
    run_differential,
)

__all__ = [
    "COMM_MODELS",
    "CONFIG_VERSION",
    "SweepConfig",
    "expand_grid",
    "parse_seed_spec",
    "CACHE_VERSION",
    "CacheVersionError",
    "ResultCache",
    "SweepResult",
    "CellTiming",
    "PoolJobError",
    "SweepCellError",
    "SweepStats",
    "pool_map",
    "run_cell",
    "run_cell_observed",
    "run_sweep",
    "DifferentialReport",
    "check_result",
    "graph_signature",
    "random_problem_config",
    "run_differential",
]
