"""The parallel experiment-sweep engine.

``run_sweep`` fans a grid of :class:`repro.sweep.config.SweepConfig`
cells across a ``ProcessPoolExecutor`` and assembles a
:class:`repro.sweep.table.SweepResult`.  Three properties make the
numbers trustworthy at scale:

* **Determinism** — every cell's RNG seeds are derived from its config
  fingerprint (stable hashes), never from worker identity, submission
  order, or wall-clock; and the result table is ordered by the input
  grid, not by completion order.  Identical grid + seeds ⇒
  byte-identical tables at any worker count.
* **Caching** — an optional :class:`repro.sweep.cache.ResultCache`
  (fingerprint-keyed JSON files) lets re-runs and incremental grid
  extensions skip completed cells entirely.
* **Observability** — progress and cache behaviour are counted in a
  :class:`repro.cosim.metrics.MetricsRegistry` (PR 1's layer), so tests
  can assert "this run recomputed nothing" instead of trusting timing;
  and an attached :class:`repro.obs.spans.SpanTracer` /
  :class:`repro.partition.seeding.ProgressProbe` turn the run into one
  merged wall-clock timeline — per-cell spans are recorded *inside* the
  pool workers, serialized back alongside each result, and folded into
  the parent trace on per-worker pid lanes, while worker-side metric
  deltas merge into the parent registry so counters are truthful at
  any worker count.

Wall-clock timings live in :class:`SweepStats`, deliberately *outside*
the result table, which must stay byte-identical across runs — the
observability payload travels next to the rows, never inside them.
"""

from __future__ import annotations

import functools
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cosim.metrics import MetricsRegistry
from repro.cosim.trace import Tracer
from repro.obs.spans import SpanTracer
from repro.obs import convergence_sink
from repro.partition import CostWeights, HEURISTICS, ProgressProbe
from repro.sweep.config import SweepConfig
from repro.sweep.cache import ResultCache
from repro.sweep.table import SweepResult

#: Trace-record kind emitted per completed/cached cell.
SWEEP_CELL = "sweep_cell"


def _cell_record(
    config: SweepConfig, problem, result
) -> Dict[str, Any]:
    """The table row for one computed cell (pure function of config)."""
    evaluation = result.evaluation
    return {
        "fingerprint": config.fingerprint,
        "problem_key": config.problem_key(),
        "config": config.to_dict(),
        "algorithm": result.algorithm,
        "n_tasks": len(problem.graph),
        "deadline_ns": problem.deadline_ns,
        "hw_area_budget": problem.hw_area_budget,
        "hw_tasks": sorted(result.hw_tasks),
        "n_hw": len(result.hw_tasks),
        "n_sw": len(result.sw_tasks),
        "cost": result.cost,
        "breakdown": dict(sorted(result.breakdown.items())),
        "latency_ns": evaluation.latency_ns,
        "hw_area": evaluation.hw_area,
        "sw_size": evaluation.sw_size,
        "comm_ns": evaluation.comm_ns,
        "overlap_fraction": evaluation.overlap_fraction,
        "deadline_met": evaluation.deadline_met,
        "area_feasible": result.area_feasible,
        "feasible": result.feasible,
        "moves_evaluated": result.moves_evaluated,
    }


def run_cell(
    config: SweepConfig, weights: Optional[CostWeights] = None
) -> Dict[str, Any]:
    """Execute one sweep cell: generate, partition, evaluate, record.

    Returns a plain JSON-serializable dict (the table row).  Everything
    in it is a pure function of the config — no timestamps, no host
    identity — so rows are comparable and cacheable across machines.
    """
    weights = weights if weights is not None else CostWeights()
    problem = config.build_problem()
    heuristic = HEURISTICS[config.heuristic]
    result = heuristic(
        problem, weights=weights, seed=config.heuristic_seed()
    )
    return _cell_record(config, problem, result)


def run_cell_observed(
    config: SweepConfig, weights: Optional[CostWeights] = None
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """:func:`run_cell` with full observability collected *in this
    process* — the form the engine runs inside pool workers.

    Returns ``(record, obs)``: the identical table row, plus a
    JSON-serializable observability payload — worker-side spans
    (build/partition phases nested under the cell span), per-iteration
    convergence records, and a worker :class:`MetricsRegistry` delta —
    for the parent to merge.  The payload never enters the row or the
    cache, so tables stay byte-identical with or without observation.
    """
    weights = weights if weights is not None else CostWeights()
    spans = SpanTracer()
    spans.name_lane(spans.pid, f"sweep worker {os.getpid()}")
    probe = ProgressProbe(sink=convergence_sink(spans))
    metrics = MetricsRegistry()
    heuristic = HEURISTICS[config.heuristic]
    with spans.span(
        "cell", fingerprint=config.fingerprint,
        heuristic=config.heuristic, seed=config.seed,
    ):
        with spans.span("build_problem", generator=config.generator,
                        n_tasks=config.n_tasks):
            problem = config.build_problem()
        with spans.span("partition", heuristic=config.heuristic):
            result = heuristic(
                problem, weights=weights, seed=config.heuristic_seed(),
                probe=probe,
            )
    name = config.heuristic
    metrics.counter("sweep.worker.cells").inc()
    metrics.counter(f"heuristic.{name}.cells").inc()
    metrics.counter(f"heuristic.{name}.moves_evaluated").inc(
        result.moves_evaluated
    )
    metrics.counter(f"heuristic.{name}.probe_records").inc(len(probe))
    metrics.histogram(f"heuristic.{name}.hw_tasks").observe(
        len(result.hw_tasks)
    )
    record = _cell_record(config, problem, result)
    for rec in probe.records:  # make merged multi-cell streams separable
        rec.detail.setdefault("cell", config.fingerprint[:12])
    obs = {
        "pid": os.getpid(),
        "spans": spans.snapshot(),
        "probe": probe.to_dicts(),
        "metrics": metrics.snapshot(),
    }
    return record, obs


def pool_map(
    fn: Callable[[Any], Any],
    jobs: List[Any],
    workers: int,
    on_done: Callable[[Any, Any, float], None],
) -> None:
    """Run ``fn(job)`` for every job and report each completion.

    The process-pool fan-out extracted from :func:`run_sweep` so other
    campaign runners (the fault-injection subsystem first among them)
    reuse the identical execution discipline: ``workers == 1`` (or a
    single job) runs in-process with no pool; more workers fan jobs
    over a ``ProcessPoolExecutor``.  ``on_done(job, result, elapsed_s)``
    fires in *completion* order — callers that need deterministic
    output must key results by job identity, never by arrival order.
    ``fn`` must be picklable (a top-level function or a
    ``functools.partial`` of one).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(jobs) <= 1:
        for job in jobs:
            t0 = time.perf_counter()
            result = fn(job)
            on_done(job, result, time.perf_counter() - t0)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        submitted = {
            pool.submit(fn, job): (job, time.perf_counter())
            for job in jobs
        }
        outstanding = set(submitted)
        while outstanding:
            done, outstanding = wait(
                outstanding, return_when=FIRST_COMPLETED
            )
            for future in done:
                job, t0 = submitted[future]
                on_done(job, future.result(),
                        time.perf_counter() - t0)


@dataclass
class SweepStats:
    """Volatile facts about one engine run (never serialized into the
    result table, which must stay byte-identical across runs)."""

    cells: int = 0
    computed: int = 0
    cache_hits: int = 0
    duplicates: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.cells} cells: {self.cache_hits} cached, "
            f"{self.computed} computed ({self.duplicates} duplicate), "
            f"workers={self.workers}, {self.elapsed_s:.2f}s"
        )


def run_sweep(
    configs: Iterable[SweepConfig],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    weights: Optional[CostWeights] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    span_tracer: Optional[SpanTracer] = None,
    probe: Optional[ProgressProbe] = None,
) -> SweepResult:
    """Run every cell of the grid; return the ordered result table.

    ``workers=1`` runs in-process (no pool); ``workers>1`` fans the
    uncached cells over a ``ProcessPoolExecutor``.  Duplicate configs in
    the grid are computed once and the row repeated.  The returned
    table carries a :class:`SweepStats` as ``.stats``.

    Attaching a ``span_tracer`` and/or ``probe`` switches cells to
    :func:`run_cell_observed`: per-cell spans recorded inside the
    workers are merged into the parent tracer on per-worker pid lanes,
    convergence records land in the probe, and worker-side metric
    deltas fold into ``metrics`` — counters read identically at any
    worker count.  The row/cache content is unchanged either way.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    configs = list(configs)
    metrics = metrics if metrics is not None else (
        tracer.metrics if tracer is not None else MetricsRegistry()
    )
    observed = span_tracer is not None or probe is not None
    t0 = time.perf_counter()

    if span_tracer is not None:
        span_tracer.name_lane(span_tracer.pid, "sweep parent")
        sweep_span = span_tracer.span("sweep", cells=len(configs),
                                      workers=workers)
        sweep_span.__enter__()
    else:
        sweep_span = None

    rows: Dict[str, Dict[str, Any]] = {}
    pending: List[SweepConfig] = []
    stats = SweepStats(cells=len(configs), workers=workers)
    metrics.counter("sweep.cells.total").inc(len(configs))
    for config in configs:
        fingerprint = config.fingerprint
        if fingerprint in rows:
            stats.duplicates += 1
            continue
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            rows[fingerprint] = cached
            stats.cache_hits += 1
            metrics.counter("sweep.cache.hits").inc()
            if tracer is not None:
                tracer.emit(SWEEP_CELL, fingerprint, time=0.0, cached=True,
                            heuristic=config.heuristic)
            if span_tracer is not None:
                span_tracer.event("cache.hit", fingerprint=fingerprint,
                                  heuristic=config.heuristic)
        else:
            # reserve the slot so a duplicate later in the grid is not
            # submitted twice
            rows[fingerprint] = {}
            pending.append(config)
            metrics.counter("sweep.cache.misses").inc()

    def finish(config: SweepConfig, record: Dict[str, Any],
               cell_elapsed: float,
               obs: Optional[Dict[str, Any]] = None) -> None:
        rows[config.fingerprint] = record
        stats.computed += 1
        metrics.counter("sweep.cells.computed").inc()
        metrics.histogram("sweep.cell.elapsed_s").observe(cell_elapsed)
        if cache is not None:
            cache.put(config.fingerprint, record)
        if tracer is not None:
            tracer.emit(SWEEP_CELL, config.fingerprint, time=0.0,
                        cached=False, heuristic=config.heuristic,
                        elapsed_s=cell_elapsed)
        if obs is not None:
            metrics.merge(obs["metrics"])
            if span_tracer is not None:
                span_tracer.merge_snapshot(
                    obs["spans"], lane=f"sweep worker {obs['pid']}"
                )
            if probe is not None:
                probe.extend_from_dicts(obs["probe"])

    cell_fn = run_cell_observed if observed else run_cell

    def on_done(config: SweepConfig, out: Any, elapsed: float) -> None:
        record, obs = out if observed else (out, None)
        finish(config, record, elapsed, obs)

    pool_map(functools.partial(cell_fn, weights=weights),
             pending, workers, on_done)

    if sweep_span is not None:
        sweep_span.__exit__(None, None, None)
    stats.elapsed_s = time.perf_counter() - t0
    table = SweepResult([rows[c.fingerprint] for c in configs])
    table.stats = stats
    if observed:
        table.obs = {"span_tracer": span_tracer, "probe": probe,
                     "metrics": metrics}
    return table
