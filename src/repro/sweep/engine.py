"""The parallel experiment-sweep engine.

``run_sweep`` fans a grid of :class:`repro.sweep.config.SweepConfig`
cells across a ``ProcessPoolExecutor`` and assembles a
:class:`repro.sweep.table.SweepResult`.  Three properties make the
numbers trustworthy at scale:

* **Determinism** — every cell's RNG seeds are derived from its config
  fingerprint (stable hashes), never from worker identity, submission
  order, or wall-clock; and the result table is ordered by the input
  grid, not by completion order.  Identical grid + seeds ⇒
  byte-identical tables at any worker count.
* **Caching** — an optional :class:`repro.sweep.cache.ResultCache`
  (fingerprint-keyed JSON files) lets re-runs and incremental grid
  extensions skip completed cells entirely.
* **Observability** — progress and cache behaviour are counted in a
  :class:`repro.cosim.metrics.MetricsRegistry` (PR 1's layer), so tests
  can assert "this run recomputed nothing" instead of trusting timing;
  and an attached :class:`repro.obs.spans.SpanTracer` /
  :class:`repro.partition.seeding.ProgressProbe` turn the run into one
  merged wall-clock timeline — per-cell spans are recorded *inside* the
  pool workers, serialized back alongside each result, and folded into
  the parent trace on per-worker pid lanes, while worker-side metric
  deltas merge into the parent registry so counters are truthful at
  any worker count.

Wall-clock timings live in :class:`SweepStats`, deliberately *outside*
the result table, which must stay byte-identical across runs — the
observability payload travels next to the rows, never inside them.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cosim.metrics import MetricsRegistry
from repro.cosim.trace import Tracer
from repro.obs.live import TelemetryEmitter
from repro.obs.spans import SpanTracer
from repro.obs import convergence_sink
from repro.partition import CostWeights, HEURISTICS, ProgressProbe
from repro.sweep.config import SweepConfig
from repro.sweep.cache import ResultCache
from repro.sweep.table import SweepResult

#: Trace-record kind emitted per completed/cached cell.
SWEEP_CELL = "sweep_cell"


def _cell_record(
    config: SweepConfig, problem, result
) -> Dict[str, Any]:
    """The table row for one computed cell (pure function of config)."""
    evaluation = result.evaluation
    return {
        "fingerprint": config.fingerprint,
        "problem_key": config.problem_key(),
        "config": config.to_dict(),
        "algorithm": result.algorithm,
        "n_tasks": len(problem.graph),
        "deadline_ns": problem.deadline_ns,
        "hw_area_budget": problem.hw_area_budget,
        "hw_tasks": sorted(result.hw_tasks),
        "n_hw": len(result.hw_tasks),
        "n_sw": len(result.sw_tasks),
        "cost": result.cost,
        "breakdown": dict(sorted(result.breakdown.items())),
        "latency_ns": evaluation.latency_ns,
        "hw_area": evaluation.hw_area,
        "sw_size": evaluation.sw_size,
        "comm_ns": evaluation.comm_ns,
        "overlap_fraction": evaluation.overlap_fraction,
        "deadline_met": evaluation.deadline_met,
        "area_feasible": result.area_feasible,
        "feasible": result.feasible,
        "moves_evaluated": result.moves_evaluated,
    }


def run_cell(
    config: SweepConfig, weights: Optional[CostWeights] = None
) -> Dict[str, Any]:
    """Execute one sweep cell: generate, partition, evaluate, record.

    Returns a plain JSON-serializable dict (the table row).  Everything
    in it is a pure function of the config — no timestamps, no host
    identity — so rows are comparable and cacheable across machines.
    """
    weights = weights if weights is not None else CostWeights()
    problem = config.build_problem()
    heuristic = HEURISTICS[config.heuristic]
    result = heuristic(
        problem, weights=weights, seed=config.heuristic_seed()
    )
    return _cell_record(config, problem, result)


def run_cell_observed(
    config: SweepConfig, weights: Optional[CostWeights] = None
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """:func:`run_cell` with full observability collected *in this
    process* — the form the engine runs inside pool workers.

    Returns ``(record, obs)``: the identical table row, plus a
    JSON-serializable observability payload — worker-side spans
    (build/partition phases nested under the cell span), per-iteration
    convergence records, and a worker :class:`MetricsRegistry` delta —
    for the parent to merge.  The payload never enters the row or the
    cache, so tables stay byte-identical with or without observation.
    """
    weights = weights if weights is not None else CostWeights()
    spans = SpanTracer()
    spans.name_lane(spans.pid, f"sweep worker {os.getpid()}")
    probe = ProgressProbe(sink=convergence_sink(spans))
    metrics = MetricsRegistry()
    heuristic = HEURISTICS[config.heuristic]
    with spans.span(
        "cell", fingerprint=config.fingerprint,
        heuristic=config.heuristic, seed=config.seed,
    ):
        with spans.span("build_problem", generator=config.generator,
                        n_tasks=config.n_tasks):
            problem = config.build_problem()
        with spans.span("partition", heuristic=config.heuristic):
            result = heuristic(
                problem, weights=weights, seed=config.heuristic_seed(),
                probe=probe,
            )
    name = config.heuristic
    metrics.counter("sweep.worker.cells").inc()
    metrics.counter(f"heuristic.{name}.cells").inc()
    metrics.counter(f"heuristic.{name}.moves_evaluated").inc(
        result.moves_evaluated
    )
    metrics.counter(f"heuristic.{name}.probe_records").inc(len(probe))
    metrics.histogram(f"heuristic.{name}.hw_tasks").observe(
        len(result.hw_tasks)
    )
    record = _cell_record(config, problem, result)
    for rec in probe.records:  # make merged multi-cell streams separable
        rec.detail.setdefault("cell", config.fingerprint[:12])
    obs = {
        "pid": os.getpid(),
        "spans": spans.snapshot(),
        "probe": probe.to_dicts(),
        "metrics": metrics.snapshot(),
    }
    return record, obs


@dataclass(frozen=True)
class CellTiming:
    """Where one job's wall-clock went.

    ``elapsed_s`` is measured *inside* the worker, around ``fn(job)``
    alone; ``wait_s`` is the queue wait between submission and the
    worker picking the job up.  The old single number started the
    clock at submission, so "cell time" silently inflated with worker
    count — a 4-worker sweep looked like it had 4x slower cells.
    ``wait_s`` is ``None`` when the execution path has no submission
    queue to measure (the campaign store's durable queue, for one).
    """

    elapsed_s: float
    wait_s: Optional[float] = None


class PoolJobError(RuntimeError):
    """``fn(job)`` raised; carries which job so callers can name it.

    Completions that arrived before the failure were already delivered
    through ``on_done`` — nothing finished is lost.
    """

    def __init__(self, job: Any, cause: BaseException) -> None:
        super().__init__(
            f"pool job {job!r} failed: {type(cause).__name__}: {cause}"
        )
        self.job = job


def _timed_call(fn: Callable[[Any], Any], submit_pc: float, job: Any):
    """Worker-side wrapper: run the job and clock it *here*.

    Returns ``(result, wait_s, elapsed_s)``.  ``perf_counter`` is
    system-wide on Linux (CLOCK_MONOTONIC), the same property the span
    tracer already relies on, so ``start - submit_pc`` measured across
    the process boundary is a real queue wait.
    """
    start = time.perf_counter()
    result = fn(job)
    return result, start - submit_pc, time.perf_counter() - start


def pool_map(
    fn: Callable[[Any], Any],
    jobs: List[Any],
    workers: int,
    on_done: Callable[[Any, Any, CellTiming], None],
) -> None:
    """Run ``fn(job)`` for every job and report each completion.

    The process-pool fan-out extracted from :func:`run_sweep` so other
    campaign runners (the fault-injection subsystem first among them)
    reuse the identical execution discipline: ``workers == 1`` (or a
    single job) runs in-process with no pool; more workers fan jobs
    over a ``ProcessPoolExecutor``.  ``on_done(job, result, timing)``
    fires in *completion* order — callers that need deterministic
    output must key results by job identity, never by arrival order.
    ``fn`` must be picklable (a top-level function or a
    ``functools.partial`` of one).

    A failing job raises :class:`PoolJobError` naming the job — after
    every completion that beat it to the finish line has been
    delivered, and with the remaining submissions cancelled.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(jobs) <= 1:
        for job in jobs:
            t0 = time.perf_counter()
            try:
                result = fn(job)
            except Exception as exc:
                raise PoolJobError(job, exc) from exc
            on_done(job, result,
                    CellTiming(time.perf_counter() - t0, 0.0))
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        submitted = {
            pool.submit(_timed_call, fn, time.perf_counter(), job): job
            for job in jobs
        }
        outstanding = set(submitted)
        try:
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                failed = None
                for future in done:
                    job = submitted[future]
                    exc = future.exception()
                    if exc is not None:
                        # deliver this round's successes first; then
                        # fail on one deterministic representative
                        if failed is None:
                            failed = (job, exc)
                        continue
                    result, wait_s, elapsed_s = future.result()
                    on_done(job, result, CellTiming(elapsed_s, wait_s))
                if failed is not None:
                    job, exc = failed
                    raise PoolJobError(job, exc) from exc
        except PoolJobError:
            for future in outstanding:
                future.cancel()
            raise


class SweepCellError(RuntimeError):
    """One sweep cell failed; names the cell and keeps what finished.

    ``fingerprint``/``heuristic`` identify the failing cell (the first
    thing a bug report needs); ``completed`` maps fingerprint → record
    for every cell that finished before the failure — those were also
    written to the cache/store when one was attached, so a re-run
    recomputes only the failed cell onward.
    """

    def __init__(
        self,
        fingerprint: str,
        heuristic: str,
        completed: Dict[str, Dict[str, Any]],
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"sweep cell {fingerprint} (heuristic={heuristic!r}) "
            f"failed: {type(cause).__name__}: {cause}; "
            f"{len(completed)} completed row(s) preserved"
        )
        self.fingerprint = fingerprint
        self.heuristic = heuristic
        self.completed = completed


@dataclass
class SweepStats:
    """Volatile facts about one engine run (never serialized into the
    result table, which must stay byte-identical across runs)."""

    cells: int = 0
    computed: int = 0
    cache_hits: int = 0
    duplicates: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.cells} cells: {self.cache_hits} cached, "
            f"{self.computed} computed ({self.duplicates} duplicate), "
            f"workers={self.workers}, {self.elapsed_s:.2f}s"
        )


def run_sweep(
    configs: Iterable[SweepConfig],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    weights: Optional[CostWeights] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    span_tracer: Optional[SpanTracer] = None,
    probe: Optional[ProgressProbe] = None,
    recorder=None,
) -> SweepResult:
    """Run every cell of the grid; return the ordered result table.

    ``workers=1`` runs in-process (no pool); ``workers>1`` fans the
    uncached cells over a ``ProcessPoolExecutor``.  Duplicate configs in
    the grid are computed once and the row repeated.  The returned
    table carries a :class:`SweepStats` as ``.stats``.

    Attaching a ``span_tracer`` and/or ``probe`` switches cells to
    :func:`run_cell_observed`: per-cell spans recorded inside the
    workers are merged into the parent tracer on per-worker pid lanes,
    convergence records land in the probe, and worker-side metric
    deltas fold into ``metrics`` — counters read identically at any
    worker count.  The row/cache content is unchanged either way.

    ``recorder`` arms the flight recorder (:mod:`repro.obs.live`):
    run marks and progress heartbeats stream to it while the sweep is
    in flight — from this process in pool mode, and from the
    coordinator plus every shard in store mode.  Samples never enter
    rows, fingerprints, or the cache; the table is byte-identical
    with or without a recorder.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    configs = list(configs)
    metrics = metrics if metrics is not None else (
        tracer.metrics if tracer is not None else MetricsRegistry()
    )
    observed = span_tracer is not None or probe is not None
    t0 = time.perf_counter()

    if span_tracer is not None:
        span_tracer.name_lane(span_tracer.pid, "sweep parent")
        sweep_span = span_tracer.span("sweep", cells=len(configs),
                                      workers=workers)
        sweep_span.__enter__()
    else:
        sweep_span = None

    rows: Dict[str, Dict[str, Any]] = {}
    pending: List[SweepConfig] = []
    stats = SweepStats(cells=len(configs), workers=workers)
    metrics.counter("sweep.cells.total").inc(len(configs))
    for config in configs:
        fingerprint = config.fingerprint
        if fingerprint in rows:
            stats.duplicates += 1
            continue
        cached = cache.get(fingerprint) if cache is not None else None
        if cached is not None:
            rows[fingerprint] = cached
            stats.cache_hits += 1
            metrics.counter("sweep.cache.hits").inc()
            if tracer is not None:
                tracer.emit(SWEEP_CELL, fingerprint, time=0.0, cached=True,
                            heuristic=config.heuristic)
            if span_tracer is not None:
                span_tracer.event("cache.hit", fingerprint=fingerprint,
                                  heuristic=config.heuristic)
        else:
            # reserve the slot so a duplicate later in the grid is not
            # submitted twice
            rows[fingerprint] = {}
            pending.append(config)
            metrics.counter("sweep.cache.misses").inc()

    #: a CampaignStore (duck-typed on its queue surface) switches the
    #: fan-out from the in-memory pool to the durable, resumable
    #: campaign service — the store commits results itself.
    store_mode = cache is not None and hasattr(cache, "claim")

    #: pool mode: the parent is the only writer, so it emits the run
    #: marks and heartbeats itself (completions arrive here).  Store
    #: mode hands the recorder to the campaign service instead — the
    #: coordinator and shards each own their telemetry stream.
    emitter = None
    if recorder is not None and not store_mode:
        emitter = TelemetryEmitter(recorder, role="sweep")
        emitter.emit("run", event="start", cells=len(configs),
                     workers=workers)

    def finish(config: SweepConfig, record: Dict[str, Any],
               timing: CellTiming,
               obs: Optional[Dict[str, Any]] = None) -> None:
        rows[config.fingerprint] = record
        stats.computed += 1
        if emitter is not None:
            emitter.heartbeat(done=stats.computed + stats.cache_hits,
                              cache_hits=stats.cache_hits,
                              total=len(configs))
        metrics.counter("sweep.cells.computed").inc()
        metrics.histogram("sweep.cell.elapsed_s").observe(
            timing.elapsed_s)
        if timing.wait_s is not None:
            metrics.histogram("sweep.cell.wait_s").observe(
                timing.wait_s)
        if cache is not None and not store_mode:
            cache.put(config.fingerprint, record)
        if tracer is not None:
            tracer.emit(SWEEP_CELL, config.fingerprint, time=0.0,
                        cached=False, heuristic=config.heuristic,
                        elapsed_s=timing.elapsed_s)
        if obs is not None:
            metrics.merge(obs["metrics"])
            if span_tracer is not None:
                lane = ("campaign shard" if store_mode
                        else "sweep worker")
                span_tracer.merge_snapshot(
                    obs["spans"], lane=f"{lane} {obs['pid']}"
                )
            if probe is not None:
                probe.extend_from_dicts(obs["probe"])

    by_fingerprint = {c.fingerprint: c for c in pending}
    failure: Optional[Tuple[SweepConfig, BaseException]] = None
    try:
        if store_mode:
            from repro.campaign.service import (
                CampaignCellError, run_store_jobs,
            )

            weights_dict = (dataclasses.asdict(weights)
                            if weights is not None else None)
            payloads = [
                (c.fingerprint,
                 {"config": c.to_dict(), "weights": weights_dict})
                for c in pending
            ]

            def on_committed(fingerprint: str, record: Dict[str, Any],
                             obs: Optional[Dict[str, Any]],
                             elapsed_s: float) -> None:
                finish(by_fingerprint[fingerprint], record,
                       CellTiming(elapsed_s), obs)

            runner = "sweep_observed" if observed else "sweep"
            try:
                run_store_jobs(cache, runner, payloads, workers,
                               on_committed, metrics=metrics,
                               span_tracer=span_tracer,
                               recorder=recorder)
            except CampaignCellError as exc:
                fingerprint = next(iter(sorted(exc.failures)))
                failure = (by_fingerprint[fingerprint], exc)
        else:
            cell_fn = run_cell_observed if observed else run_cell

            def on_done(config: SweepConfig, out: Any,
                        timing: CellTiming) -> None:
                record, obs = out if observed else (out, None)
                finish(config, record, timing, obs)

            try:
                pool_map(functools.partial(cell_fn, weights=weights),
                         pending, workers, on_done)
            except PoolJobError as exc:
                failure = (exc.job, exc.__cause__ or exc)
        if failure is not None:
            config, cause = failure
            raise SweepCellError(
                config.fingerprint, config.heuristic,
                {fp: r for fp, r in rows.items() if r}, cause,
            ) from cause
    finally:
        # the fan-out must never leave the sweep span open or the
        # reserved {} placeholder rows masquerading as results
        if sweep_span is not None:
            sweep_span.__exit__(*sys.exc_info())

    stats.elapsed_s = time.perf_counter() - t0
    if emitter is not None:
        # the final beat carries ``exiting`` so post-mortems read a
        # completed run as exited, not dead (rate limiting would
        # otherwise swallow it on short runs)
        emitter.heartbeat(force=True, exiting=True,
                          done=stats.computed + stats.cache_hits,
                          cache_hits=stats.cache_hits,
                          total=len(configs))
        emitter.emit("run", event="finish",
                     done=stats.computed + stats.cache_hits,
                     computed=stats.computed,
                     cache_hits=stats.cache_hits,
                     elapsed_s=stats.elapsed_s)
    table = SweepResult([rows[c.fingerprint] for c in configs])
    table.stats = stats
    if observed:
        table.obs = {"span_tracer": span_tracer, "probe": probe,
                     "metrics": metrics}
    return table
