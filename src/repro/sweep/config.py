"""Sweep cell configurations and grids.

One *cell* of a sweep is the 4-tuple the issue of scale demands we
enumerate: (graph generator × cost model × heuristic × seed), plus the
problem-shaping knobs (size, communication model, deadline and area
budget as scale-free factors).  A :class:`SweepConfig` freezes one cell
and gives it two identities:

* :attr:`SweepConfig.fingerprint` — a stable SHA-256 of the canonical
  JSON form.  It keys the on-disk result cache, so a re-run or an
  incremental grid extension skips every completed cell.
* :meth:`SweepConfig.problem_key` — the fingerprint of the *problem*
  fields only (heuristic excluded).  Cells sharing a problem key saw
  byte-identical task graphs, which is what makes cross-heuristic
  comparison (and the differential harness) meaningful.

Seed derivation is a stable hash of the config — never Python's salted
``hash()`` — so it is identical across processes, worker counts, and
submission orders.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.estimate.communication import DEFAULT, LOOSE, TIGHT, CommModel
from repro.graph.generators import COST_MODELS, GENERATORS, generate
from repro.partition import HEURISTICS, PartitionProblem

#: Bump when the meaning of a config field (or the record schema)
#: changes: old cache entries then read as misses instead of lying.
CONFIG_VERSION = 1

#: Communication-model presets addressable from a grid axis.
COMM_MODELS: Dict[str, CommModel] = {
    "default": DEFAULT,
    "tight": TIGHT,
    "loose": LOOSE,
}


@dataclass(frozen=True)
class SweepConfig:
    """One fully-specified sweep cell.

    ``deadline_factor`` scales the all-software critical path into a
    deadline (None = unconstrained); ``area_budget_factor`` scales the
    sum of standalone task areas into a budget (None = unbounded).
    Factors rather than absolute numbers keep one grid meaningful
    across generators and sizes.
    """

    generator: str = "layered"
    n_tasks: int = 12
    cost_model: str = "default"
    heuristic: str = "greedy"
    seed: int = 0
    comm: str = "default"
    deadline_factor: Optional[float] = 0.7
    area_budget_factor: Optional[float] = 0.5
    hw_parallelism: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.generator not in GENERATORS:
            raise KeyError(
                f"unknown generator {self.generator!r}; "
                f"known: {sorted(GENERATORS)}"
            )
        if self.cost_model not in COST_MODELS:
            raise KeyError(
                f"unknown cost model {self.cost_model!r}; "
                f"known: {sorted(COST_MODELS)}"
            )
        if self.heuristic not in HEURISTICS:
            raise KeyError(
                f"unknown heuristic {self.heuristic!r}; "
                f"known: {sorted(HEURISTICS)}"
            )
        if self.comm not in COMM_MODELS:
            raise KeyError(
                f"unknown comm model {self.comm!r}; "
                f"known: {sorted(COMM_MODELS)}"
            )
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        for factor_name in ("deadline_factor", "area_budget_factor"):
            value = getattr(self, factor_name)
            if value is not None and value <= 0:
                raise ValueError(f"{factor_name} must be > 0 or None")

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Field-ordered plain-dict form (JSON-serializable)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown config fields: {sorted(unknown)}")
        return cls(**data)

    def canonical_json(self) -> str:
        """The canonical serialized form everything else hashes."""
        return json.dumps(
            {"version": CONFIG_VERSION, **self.to_dict()},
            sort_keys=True, separators=(",", ":"),
        )

    @property
    def fingerprint(self) -> str:
        """Stable hex digest of the full config (the cache key)."""
        return _digest(self.canonical_json())

    def problem_dict(self) -> Dict[str, Any]:
        """The fields that define the *problem* (heuristic excluded)."""
        out = self.to_dict()
        del out["heuristic"]
        return out

    def problem_key(self) -> str:
        """Stable hex digest of the problem fields only."""
        doc = json.dumps(
            {"version": CONFIG_VERSION, **self.problem_dict()},
            sort_keys=True, separators=(",", ":"),
        )
        return _digest(doc)

    # ------------------------------------------------------------------
    # derived seeds
    # ------------------------------------------------------------------
    def graph_seed(self) -> int:
        """RNG seed for workload generation.

        Derived from the problem fields only, so every heuristic in a
        comparison sees the identical graph.
        """
        return _derive_seed(self.problem_key(), "graph")

    def heuristic_seed(self) -> int:
        """RNG seed handed to the heuristic (annealing trajectories)."""
        return _derive_seed(self.fingerprint, "heuristic")

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def build_problem(self) -> PartitionProblem:
        """Generate the workload and wrap it as a partition problem."""
        rng = random.Random(self.graph_seed())
        graph = generate(
            self.generator, rng,
            n_tasks=self.n_tasks,
            costs=COST_MODELS[self.cost_model],
            name=f"{self.generator}-{self.seed}",
        )
        deadline = None
        if self.deadline_factor is not None:
            all_sw, _path = graph.critical_path("sw")
            deadline = all_sw * self.deadline_factor
        budget = None
        if self.area_budget_factor is not None:
            total = sum(graph.task(n).hw_area for n in graph.task_names)
            budget = total * self.area_budget_factor
        return PartitionProblem(
            graph=graph,
            comm=COMM_MODELS[self.comm],
            hw_area_budget=budget,
            deadline_ns=deadline,
            hw_parallelism=self.hw_parallelism,
        )


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _derive_seed(key: str, salt: str) -> int:
    digest = hashlib.sha256(f"{salt}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------
def expand_grid(
    generators: Sequence[str] = ("layered",),
    n_tasks: Sequence[int] = (12,),
    cost_models: Sequence[str] = ("default",),
    heuristics: Sequence[str] = ("greedy",),
    seeds: Iterable[int] = range(4),
    comm: Sequence[str] = ("default",),
    deadline_factor: Optional[float] = 0.7,
    area_budget_factor: Optional[float] = 0.5,
    hw_parallelism: Optional[int] = 1,
) -> List[SweepConfig]:
    """The cartesian product of the axes, in deterministic order.

    Axis order (outermost first): generator, n_tasks, cost model,
    comm model, heuristic, seed — so all cells of one problem are
    adjacent in the resulting table.
    """
    return [
        SweepConfig(
            generator=g, n_tasks=n, cost_model=c, heuristic=h,
            seed=s, comm=cm,
            deadline_factor=deadline_factor,
            area_budget_factor=area_budget_factor,
            hw_parallelism=hw_parallelism,
        )
        for g, n, c, cm, h, s in itertools.product(
            generators, n_tasks, cost_models, comm, heuristics, list(seeds)
        )
    ]


def parse_seed_spec(spec: str) -> List[int]:
    """Parse a CLI seed spec: comma-separated ints and ``a-b`` ranges
    (inclusive), e.g. ``"0-3,7,10-11"`` → ``[0, 1, 2, 3, 7, 10, 11]``."""
    seeds: List[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        lo, dash, hi = part.partition("-")
        if dash and lo:  # "a-b" range ("-5" is a negative literal)
            start, end = int(lo), int(hi)
            if end < start:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(start, end + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in spec {spec!r}")
    return seeds
