"""On-disk JSON result cache keyed by config fingerprint.

One file per completed cell, named ``<fingerprint>.json``, holding the
cache version, the fingerprint, the full config (for human inspection
and paranoia-checking), and the result record.  Anything unreadable,
version-skewed, or fingerprint-mismatched reads as a miss — the engine
then recomputes and overwrites, so a corrupt cache can cost time but
never correctness.

Writes are atomic (temp file + ``os.replace``) so parallel sweeps
sharing a cache directory never expose half-written entries.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump to invalidate every existing cache entry (record schema change).
CACHE_VERSION = 1


class ResultCache:
    """Fingerprint-addressed store of sweep cell records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        """Where the record for ``fingerprint`` lives (or would live)."""
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None on miss/corruption/version skew."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("version") != CACHE_VERSION:
            return None
        if doc.get("fingerprint") != fingerprint:
            return None
        record = doc.get("record")
        return record if isinstance(record, dict) else None

    def put(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Store one record atomically."""
        doc = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "record": record,
        }
        path = self.path_for(fingerprint)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)

    def fingerprints(self) -> List[str]:
        """Fingerprints of every entry currently on disk, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
