"""On-disk JSON result cache keyed by config fingerprint.

One file per completed cell, named ``<fingerprint>.json``, holding the
cache version, the fingerprint, the full config (for human inspection
and paranoia-checking), and the result record.  Anything unreadable,
fingerprint-mismatched, or written by an *older* schema reads as a
miss — the engine then recomputes and overwrites, so a corrupt or
stale cache can cost time but never correctness.  An entry written by
a *newer* schema than this code understands is different: silently
treating it as a miss would overwrite data a newer tool considers
authoritative (and present the user an inexplicably empty/recomputed
table), so that raises :class:`CacheVersionError` instead.

Writes are atomic (temp file + ``os.replace``) so parallel sweeps
sharing a cache directory never expose half-written entries.  A writer
killed between creating its temp file and the ``os.replace`` used to
orphan ``.<fingerprint>.json.<pid>.tmp`` litter forever; opening a
cache (and :meth:`ResultCache.clear`) now sweeps temp files whose
writing process is gone, while live writers' files are left alone.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump to invalidate every existing cache entry (record schema change).
CACHE_VERSION = 1


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running on this box?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    return True


class CacheVersionError(RuntimeError):
    """A cache entry was written by a newer, incompatible schema.

    Raised instead of a silent miss: recomputing over a newer cache
    would clobber entries another (newer) tool still trusts.  The
    message names the offending file and both versions so the fix —
    point ``--cache`` at a fresh directory, or upgrade — is obvious.
    """


class ResultCache:
    """Fingerprint-addressed store of sweep cell records."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_tmp()

    def path_for(self, fingerprint: str) -> Path:
        """Where the record for ``fingerprint`` lives (or would live)."""
        return self.root / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None on miss/corruption/stale version.

        Raises :class:`CacheVersionError` for entries written by a
        *newer* schema than this code supports (see module docstring).
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        version = doc.get("version")
        if isinstance(version, int) and version > CACHE_VERSION:
            raise CacheVersionError(
                f"cache entry {path} was written by schema version "
                f"{version}, but this build only supports up to "
                f"{CACHE_VERSION}; use a fresh cache directory or "
                f"upgrade the tool"
            )
        if version != CACHE_VERSION:
            return None
        if doc.get("fingerprint") != fingerprint:
            return None
        record = doc.get("record")
        return record if isinstance(record, dict) else None

    def put(self, fingerprint: str, record: Dict[str, Any]) -> None:
        """Store one record atomically."""
        doc = {
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "record": record,
        }
        path = self.path_for(fingerprint)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)

    def fingerprints(self) -> List[str]:
        """Fingerprints of every entry currently on disk, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also removes *all* temp files, live writers' included — clear
        means the directory is being reset wholesale.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.root.glob(".*.tmp"):
            path.unlink(missing_ok=True)
        return removed

    def sweep_stale_tmp(self) -> int:
        """Remove temp files orphaned by crashed writers.

        The temp name embeds the writer's pid
        (``.<fingerprint>.json.<pid>.tmp``); a file whose pid no
        longer runs on this box can never be ``os.replace``d into
        place, so it is litter.  Files of live pids are in-flight
        writes and are left untouched.  Returns how many were removed.
        """
        removed = 0
        for path in self.root.glob(".*.tmp"):
            parts = path.name.split(".")
            pid = parts[-2] if len(parts) >= 3 else ""
            if pid.isdigit() and _pid_alive(int(pid)):
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {len(self)} entries)"
