"""Differential / invariant harness for the partition heuristics.

Six heuristics producing numbers that get compared in one table is only
publishable if all six demonstrably play the same game.  This harness
runs every heuristic on *identical* problems (same graph bytes, same
constraints) and checks the shared invariants:

* **assignment totality** — every task on exactly one side of the
  boundary (HW ∪ SW = all tasks, HW ∩ SW = ∅, no strays);
* **budget flagging** — the area budget is respected, or the result is
  flagged infeasible (``PartitionResult.area_feasible``), never a
  silent violation;
* **evaluation honesty** — the evaluation carried by the result equals
  a from-scratch re-evaluation of its partition (no stale schedules);
* **incremental = from-scratch** — the incremental area estimator,
  driven through an add/remove/re-add sequence, lands exactly on the
  from-scratch (and memoized) evaluation that the sweep uses;
* **cost honesty** — the reported scalar cost equals the cost function
  recomputed from the partition under the same weights.

Every failure message embeds the cell config's canonical JSON, so any
violation reproduces with ``SweepConfig.from_dict(...)`` + the named
heuristic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.estimate.incremental import (
    IncrementalEstimator,
    requirements_from_task,
)
from repro.graph.taskgraph import TaskGraph
from repro.partition import (
    CostWeights,
    HEURISTICS,
    PartitionProblem,
    PartitionResult,
    evaluate_partition,
    partition_cost,
)
from repro.partition.evaluate import hardware_area
from repro.sweep.config import COMM_MODELS, SweepConfig

#: relative tolerance for float agreement between two evaluations of
#: the same partition (pure-Python arithmetic; should agree to the bit,
#: but summation order inside dict/set iterations may legally differ)
REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))


def graph_signature(graph: TaskGraph) -> str:
    """A structural digest of a task graph: same signature ⇒ the
    heuristics were judged on the same problem."""
    parts = [graph.name]
    for name in graph.task_names:
        task = graph.task(name)
        parts.append(
            f"{name}:{task.sw_time!r}:{task.hw_time!r}:{task.hw_area!r}:"
            f"{task.sw_size!r}:{task.parallelism!r}:{task.modifiability!r}"
        )
    for edge in sorted(graph.edges, key=lambda e: (e.src, e.dst)):
        parts.append(f"{edge.src}->{edge.dst}:{edge.volume!r}")
    return "|".join(parts)


def check_result(
    problem: PartitionProblem,
    result: PartitionResult,
    weights: Optional[CostWeights] = None,
    label: str = "",
) -> List[str]:
    """Check one heuristic result against the shared invariants.

    Returns a list of human-readable failure descriptions (empty when
    every invariant holds).  ``label`` prefixes each failure so batched
    reports stay attributable.
    """
    weights = weights if weights is not None else CostWeights()
    failures: List[str] = []

    def fail(message: str) -> None:
        failures.append(f"{label}: {message}" if label else message)

    names = set(problem.graph.task_names)
    hw = set(result.hw_tasks)
    sw = set(result.sw_tasks)

    # 1. assignment totality
    if not hw <= names:
        fail(f"hw_tasks outside graph: {sorted(hw - names)}")
    if hw & sw:
        fail(f"tasks on both sides: {sorted(hw & sw)}")
    if (hw | sw) != names:
        fail(f"unassigned tasks: {sorted(names - (hw | sw))}")
    if not hw <= names:
        # a partition naming unknown tasks cannot be re-evaluated; the
        # remaining checks would only crash on it
        return failures

    # 2. evaluation honesty: from-scratch re-evaluation agrees
    fresh = evaluate_partition(problem, result.hw_tasks)
    carried = result.evaluation
    for attr in ("latency_ns", "hw_area", "sw_size", "comm_ns",
                 "cpu_busy_ns", "hw_busy_ns"):
        a, b = getattr(carried, attr), getattr(fresh, attr)
        if not _close(a, b):
            fail(f"stale evaluation: {attr} carried={a!r} fresh={b!r}")
    if carried.deadline_met != fresh.deadline_met:
        fail("stale evaluation: deadline_met flag disagrees")

    # 3. budget flagging: respected, or flagged infeasible
    budget = problem.hw_area_budget
    over_budget = budget is not None and fresh.hw_area > budget + 1e-9
    if over_budget and result.area_feasible:
        fail(
            f"silent budget violation: area {fresh.hw_area:.1f} > "
            f"budget {budget:.1f} but area_feasible is True"
        )
    if not over_budget and not result.area_feasible:
        fail("partition within budget but flagged area-infeasible")

    # 4. incremental estimator = from-scratch evaluation, through an
    #    add / remove-half / re-add sequence (exercises both update
    #    directions, not just construction)
    if problem.use_sharing and hw:
        ordered = sorted(hw)
        est = IncrementalEstimator()
        for name in ordered:
            task = problem.graph.task(name)
            est.add(
                name,
                requirements_from_task(task),
                registers=max(2, int(task.sw_size / 8)),
                states=max(4, int(task.hw_time)),
            )
        churn = ordered[: (len(ordered) + 1) // 2]
        for name in churn:
            est.remove(name)
        for name in churn:
            task = problem.graph.task(name)
            est.add(
                name,
                requirements_from_task(task),
                registers=max(2, int(task.sw_size / 8)),
                states=max(4, int(task.hw_time)),
            )
        scratch = hardware_area(problem, hw)
        if not _close(est.area, scratch):
            fail(
                f"incremental area {est.area!r} != from-scratch "
                f"area {scratch!r} after add/remove churn"
            )

    # 5. cost honesty: reported cost equals recomputation
    recomputed, _breakdown, _evaluation = partition_cost(
        problem, result.hw_tasks, weights, evaluation=fresh
    )
    if not _close(result.cost, recomputed):
        fail(
            f"reported cost {result.cost!r} != recomputed "
            f"{recomputed!r}"
        )

    return failures


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    problems: int = 0
    results: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        text = (
            f"differential: {self.problems} problems x "
            f"{self.results // max(self.problems, 1)} heuristics, "
            f"{self.checks} invariant checks: {status}"
        )
        if self.failures:
            text += "\n" + "\n".join(f"  {f}" for f in self.failures)
        return text


def random_problem_config(rng: random.Random,
                          n_tasks: Sequence[int] = (6, 14)) -> SweepConfig:
    """Draw one random problem cell (heuristic field left at default;
    callers rewrite it per heuristic, keeping the problem fields fixed)."""
    from repro.graph.generators import COST_MODELS, GENERATORS

    return SweepConfig(
        generator=rng.choice(sorted(GENERATORS)),
        n_tasks=rng.randint(min(n_tasks), max(n_tasks)),
        cost_model=rng.choice(sorted(COST_MODELS)),
        seed=rng.randrange(2 ** 31),
        comm=rng.choice(sorted(COMM_MODELS)),
        deadline_factor=rng.choice([None, 0.5, 0.7, 0.9]),
        area_budget_factor=rng.choice([None, 0.3, 0.5, 0.8]),
        hw_parallelism=rng.choice([1, 2, None]),
    )


def run_differential(
    n_problems: int = 50,
    seed: int = 20260806,
    heuristics: Optional[Sequence[str]] = None,
    weights: Optional[CostWeights] = None,
    n_tasks: Sequence[int] = (6, 14),
) -> DifferentialReport:
    """Run all (or the named) heuristics on ``n_problems`` random
    problems and check every shared invariant.

    Deterministic in ``seed``: a reported failure reproduces by
    rebuilding the embedded config.  Also asserts that every heuristic
    of one problem actually saw the identical graph (byte-equal
    signature) — the precondition for any cross-heuristic claim.
    """
    weights = weights if weights is not None else CostWeights()
    names = sorted(heuristics) if heuristics is not None \
        else sorted(HEURISTICS)
    unknown = set(names) - set(HEURISTICS)
    if unknown:
        raise KeyError(f"unknown heuristics: {sorted(unknown)}")

    rng = random.Random(seed)
    report = DifferentialReport(problems=n_problems)
    for _ in range(n_problems):
        base = random_problem_config(rng, n_tasks=n_tasks)
        signatures: Dict[str, str] = {}
        for heuristic in names:
            config = SweepConfig.from_dict(
                {**base.to_dict(), "heuristic": heuristic}
            )
            problem = config.build_problem()
            signatures[heuristic] = graph_signature(problem.graph)
            result = HEURISTICS[heuristic](
                problem, weights=weights, seed=config.heuristic_seed()
            )
            label = f"{heuristic} on {config.canonical_json()}"
            failures = check_result(
                problem, result, weights=weights, label=label
            )
            report.results += 1
            report.checks += 5
            report.failures.extend(failures)
        if len(set(signatures.values())) > 1:
            report.failures.append(
                f"heuristics saw different graphs for problem "
                f"{base.problem_key()}: {sorted(signatures)}"
            )
        report.checks += 1
    return report
