"""Communicating-process system specifications.

Section 2: a mixed system is specified as cooperating *processes*
(Figure 1) before any of them is committed to hardware or software.
This package provides that front end:

* :mod:`repro.spec.behavior` — the statement forms a process body may
  contain (compute, send, receive, wait, loop);
* :mod:`repro.spec.process` — processes, typed channels, and the
  :class:`repro.spec.process.SystemSpec` container, which is
  **executable** (Gajski et al.'s executable-specification refinement
  [16]): :meth:`repro.spec.process.SystemSpec.execute` runs the spec on
  the discrete-event kernel for early functional validation, and
  :meth:`repro.spec.process.SystemSpec.to_task_graph` derives the task
  graph the partitioners and co-synthesizers consume.
"""

from repro.spec.behavior import Compute, Loop, Receive, Send, Wait
from repro.spec.process import ChannelSpec, ProcessSpec, SystemSpec

__all__ = [
    "Compute",
    "Send",
    "Receive",
    "Wait",
    "Loop",
    "ProcessSpec",
    "ChannelSpec",
    "SystemSpec",
]
