"""Statement forms for process behaviors.

A process body is a sequence of statements; the vocabulary matches the
communication primitives the paper's co-simulation references use
(send, receive, wait [3]) plus abstract computation and iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Compute:
    """Consume processor/datapath time.

    ``duration_ns`` is the reference (software) execution time;
    ``hw_speedup`` how much faster dedicated hardware runs it;
    ``parallelism`` the nature-of-computation annotation.
    """

    duration_ns: float
    label: str = "compute"
    hw_speedup: float = 4.0
    parallelism: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be >= 0")
        if self.hw_speedup <= 0:
            raise ValueError("hw_speedup must be positive")


@dataclass(frozen=True)
class Send:
    """Send one message of ``words`` words on a named channel."""

    channel: str
    words: float = 1.0

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ValueError("words must be positive")


@dataclass(frozen=True)
class Receive:
    """Receive one message from a named channel (blocking)."""

    channel: str


@dataclass(frozen=True)
class Wait:
    """Block until a message is available, without consuming it."""

    channel: str


@dataclass(frozen=True)
class Loop:
    """Repeat a body a fixed number of times."""

    count: int
    body: Tuple["Statement", ...]

    def __init__(self, count: int, body):
        if count < 0:
            raise ValueError("count must be >= 0")
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "body", tuple(body))


Statement = Union[Compute, Send, Receive, Wait, Loop]
