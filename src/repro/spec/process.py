"""Processes, channels, and the executable system specification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cosim.kernel import Simulator
from repro.cosim.msglevel import Channel
from repro.graph.taskgraph import Task, TaskGraph
from repro.spec.behavior import (
    Compute,
    Loop,
    Receive,
    Send,
    Statement,
    Wait,
)


class SpecError(ValueError):
    """Raised for malformed specifications."""


@dataclass
class ChannelSpec:
    """A typed point-to-point channel between two named processes."""

    name: str
    src: str
    dst: str
    capacity: Optional[int] = None  # None = unbounded, 0 = rendezvous


@dataclass
class ProcessSpec:
    """One process: a name and a behavior."""

    name: str
    body: List[Statement]

    def statements(self) -> List[Statement]:
        """The body with loops left folded (structural view)."""
        return list(self.body)

    def flat(self) -> List[Statement]:
        """The body with loops unrolled (execution view)."""
        out: List[Statement] = []

        def walk(stmts):
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    for _ in range(stmt.count):
                        walk(stmt.body)
                else:
                    out.append(stmt)

        walk(self.body)
        return out

    def total_compute_ns(self) -> float:
        """Reference software time of all computation (loops unrolled)."""
        return sum(
            s.duration_ns for s in self.flat() if isinstance(s, Compute)
        )

    def sends_on(self, channel: str) -> Tuple[int, float]:
        """(message count, total words) this process sends on a channel."""
        count, words = 0, 0.0
        for stmt in self.flat():
            if isinstance(stmt, Send) and stmt.channel == channel:
                count += 1
                words += stmt.words
        return count, words


@dataclass
class ExecutionTrace:
    """What one execution of the specification did."""

    latency_ns: float
    finish_times: Dict[str, float]
    channel_messages: Dict[str, int]

    @property
    def total_messages(self) -> int:
        return sum(self.channel_messages.values())


class SystemSpec:
    """A complete specification: processes plus channels.

    Executable (for early functional validation) and refinable (to the
    task graph the partitioning/co-synthesis back ends consume).
    """

    def __init__(
        self,
        processes: List[ProcessSpec],
        channels: List[ChannelSpec],
        name: str = "system",
    ) -> None:
        self.name = name
        self.processes = {p.name: p for p in processes}
        if len(self.processes) != len(processes):
            raise SpecError("duplicate process names")
        self.channels = {c.name: c for c in channels}
        if len(self.channels) != len(channels):
            raise SpecError("duplicate channel names")
        for chan in channels:
            if chan.src not in self.processes:
                raise SpecError(f"channel {chan.name!r}: unknown src "
                                f"{chan.src!r}")
            if chan.dst not in self.processes:
                raise SpecError(f"channel {chan.name!r}: unknown dst "
                                f"{chan.dst!r}")
        self._validate_channel_usage()

    def _validate_channel_usage(self) -> None:
        for proc in self.processes.values():
            for stmt in proc.flat():
                if isinstance(stmt, (Send, Receive, Wait)):
                    chan = self.channels.get(stmt.channel)
                    if chan is None:
                        raise SpecError(
                            f"process {proc.name!r} uses unknown channel "
                            f"{stmt.channel!r}"
                        )
                    if isinstance(stmt, Send) and chan.src != proc.name:
                        raise SpecError(
                            f"process {proc.name!r} sends on {chan.name!r} "
                            f"but its source is {chan.src!r}"
                        )
                    if isinstance(stmt, (Receive, Wait)) and \
                            chan.dst != proc.name:
                        raise SpecError(
                            f"process {proc.name!r} receives on "
                            f"{chan.name!r} but its sink is {chan.dst!r}"
                        )

    # ------------------------------------------------------------------
    # executable specification
    # ------------------------------------------------------------------
    def execute(
        self,
        time_scale: float = 1.0,
        latency_per_message: float = 0.0,
        latency_per_word: float = 0.0,
        max_time: float = 1e12,
    ) -> ExecutionTrace:
        """Run the specification on the discrete-event kernel.

        Computation costs its reference duration × ``time_scale``;
        channels carry the given latency model.  Raises
        :class:`SpecError` on deadlock (a blocked receive whose sender
        never arrives), which is exactly the class of bug executable
        specifications exist to catch early.
        """
        sim = Simulator()
        channels = {
            name: Channel(
                sim, name,
                capacity=spec.capacity,
                latency_per_message=latency_per_message,
                latency_per_word=latency_per_word,
            )
            for name, spec in self.channels.items()
        }
        finish: Dict[str, float] = {}

        def run_proc(proc: ProcessSpec):
            for stmt in proc.flat():
                if isinstance(stmt, Compute):
                    yield sim.timeout(stmt.duration_ns * time_scale)
                elif isinstance(stmt, Send):
                    yield from channels[stmt.channel].send(
                        stmt.words, words=int(stmt.words) or 1
                    )
                elif isinstance(stmt, Receive):
                    yield from channels[stmt.channel].receive()
                elif isinstance(stmt, Wait):
                    yield from channels[stmt.channel].wait()
            finish[proc.name] = sim.now

        for proc in self.processes.values():
            sim.process(run_proc(proc), name=proc.name)
        sim.run(until=max_time)
        if len(finish) != len(self.processes):
            stuck = sorted(set(self.processes) - set(finish))
            raise SpecError(
                f"specification deadlocks: {stuck} never terminate"
            )
        return ExecutionTrace(
            latency_ns=max(finish.values(), default=0.0),
            finish_times=finish,
            channel_messages={
                name: chan.received for name, chan in channels.items()
            },
        )

    # ------------------------------------------------------------------
    # refinement to the partitioning representation
    # ------------------------------------------------------------------
    def to_task_graph(self) -> TaskGraph:
        """Refine to a task graph: one task per process, one edge per
        channel (volume = total words sent across the execution).

        Characterizations derive from the behavior annotations:
        duration-weighted hardware speedup and parallelism.
        """
        graph = TaskGraph(self.name)
        for proc in self.processes.values():
            computes = [
                s for s in proc.flat() if isinstance(s, Compute)
            ]
            total = sum(c.duration_ns for c in computes)
            if total <= 0:
                raise SpecError(
                    f"process {proc.name!r} has no computation; "
                    "refinement needs a non-trivial behavior"
                )
            speedup = sum(
                c.duration_ns * c.hw_speedup for c in computes
            ) / total
            parallelism = sum(
                c.duration_ns * c.parallelism for c in computes
            ) / total
            graph.add_task(Task(
                name=proc.name,
                sw_time=total,
                hw_time=total / speedup,
                hw_area=total * 4.0,
                sw_size=max(1.0, total / 2.0),
                parallelism=max(1.0, parallelism),
            ))
        for chan in self.channels.values():
            _count, words = self.processes[chan.src].sends_on(chan.name)
            if chan.src != chan.dst and words > 0 and \
                    not graph.has_edge(chan.src, chan.dst):
                graph.add_edge(chan.src, chan.dst, words)
        graph.validate()
        return graph
