"""Hardware-first partition extraction (Gupta & De Micheli style).

Reference [6] of the paper: start from an all-hardware implementation
(which trivially meets performance) and move functionality to software
on the instruction-set processor as long as the performance constraint
still holds — "the goal of hardware/software partitioning in this case
is to minimize the implementation cost without decreasing performance
relative to a purely hardware implementation."

Move order is by *cost-effectiveness of extraction*: tasks whose
hardware is expensive but whose software slowdown and communication
impact are small leave hardware first.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.evaluate import evaluate_partition
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def vulcan_partition(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    slack_factor: float = 1.0,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run hardware-first extraction.

    The performance constraint is ``problem.deadline_ns`` if set,
    otherwise ``slack_factor`` x the all-hardware latency (``1.0`` means
    "no slower than all-hardware", the strictest reading of [6]; values
    above 1 permit bounded degradation).

    Deterministic: ``seed``/``rng`` are accepted for interface
    uniformity with the stochastic heuristics and ignored.  An attached
    ``probe`` receives one convergence record per accepted extraction
    (the six-factor cost of the shrinking partition, its latency, and
    the remaining hardware population).
    """
    resolve_rng(seed, rng)  # validate the uniform interface contract
    graph = problem.graph
    hw = frozenset(graph.task_names)
    base = evaluate_partition(problem, hw)
    deadline = (
        problem.deadline_ns if problem.deadline_ns is not None
        else base.latency_ns * slack_factor
    )
    moves = 0
    if probe is not None:
        start_cost, _b, _e = partition_cost(problem, hw, weights)
        probe.record("vulcan", start_cost, task=None,
                     latency_ns=base.latency_ns, n_hw=len(hw))

    improved = True
    while improved and hw:
        improved = False
        # rank candidates by hardware area saved per software time added
        candidates = sorted(
            hw,
            key=lambda n: (
                -graph.task(n).hw_area
                / max(graph.task(n).sw_time - graph.task(n).hw_time, 1e-9),
                n,
            ),
        )
        for name in candidates:
            candidate = hw - {name}
            evaluation = evaluate_partition(problem, candidate)
            moves += 1
            if evaluation.latency_ns <= deadline:
                hw = candidate
                improved = True
                if probe is not None:
                    step_cost, _b, _e = partition_cost(problem, hw, weights)
                    probe.record("vulcan", step_cost, task=name,
                                 latency_ns=evaluation.latency_ns,
                                 n_hw=len(hw), moves_evaluated=moves)
                break

    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    return PartitionResult(
        problem=problem,
        hw_tasks=hw,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="vulcan",
        moves_evaluated=moves,
    )
