"""The uniform knob registry for the partition heuristics.

Every heuristic exposes tuning knobs through keyword arguments
(``max_iterations``, ``cooling``, ``base_threshold``, ...), but until
now nothing *declared* them: a caller wanting to tune a heuristic had
to read its signature, and a search driver had no machine-readable
description of the tunable space.  :data:`HEURISTIC_KNOBS` is that
description — one :class:`Knob` per tunable keyword, with a **finite
value grid** rather than an open interval.

The grid is deliberate.  The design-space explorer
(:mod:`repro.explore`) fingerprints every (heuristic, knob values)
combination for its result cache; continuous knobs would make nearly
identical genomes fingerprint differently and defeat caching, while a
finite grid makes repeated genomes byte-identical and therefore free.
Grids list values in increasing order, so DoE seeding can take the
extremes as its two factor levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Knob:
    """One tunable keyword argument of a heuristic.

    ``values`` is the full, finite, increasing grid of legal settings;
    ``default`` must be a member (it is the heuristic's signature
    default, so an empty knob assignment reproduces historical
    behaviour exactly).
    """

    name: str
    values: Tuple[Any, ...]
    default: Any

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} has an empty grid")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} grid has duplicates")
        if self.default not in self.values:
            raise ValueError(
                f"knob {self.name!r}: default {self.default!r} not in "
                f"grid {self.values!r}"
            )


#: heuristic name → its declared knobs, in signature order.  Heuristics
#: with no tunable knobs (cosyma) map to an empty tuple so callers can
#: iterate the registry without special-casing.
HEURISTIC_KNOBS: Dict[str, Tuple[Knob, ...]] = {
    "greedy": (
        Knob("max_iterations", (5, 10, 25, 100, 1000), 1000),
    ),
    "kl": (
        Knob("max_passes", (1, 2, 4, 10), 10),
    ),
    "annealing": (
        Knob("cooling", (0.8, 0.9, 0.95), 0.95),
        Knob("steps_per_temperature", (5, 10, 20), 20),
        Knob("final_temperature_ratio", (1e-2, 1e-3), 1e-3),
    ),
    "vulcan": (
        Knob("slack_factor", (0.5, 1.0, 1.5, 2.0), 1.0),
    ),
    "cosyma": (),
    "gclp": (
        Knob("base_threshold", (0.3, 0.4, 0.5, 0.6, 0.7), 0.5),
        Knob("extremity_gain", (0.0, 0.25, 0.5), 0.25),
    ),
}


def default_knobs(heuristic: str) -> Dict[str, Any]:
    """The all-defaults knob assignment for one heuristic."""
    return {
        knob.name: knob.default for knob in HEURISTIC_KNOBS[heuristic]
    }


def validate_knobs(heuristic: str, knobs: Dict[str, Any]) -> None:
    """Reject unknown knob names and off-grid values loudly.

    A typo'd knob name would otherwise surface as a confusing
    ``TypeError`` deep inside the heuristic call; an off-grid value
    would silently fragment the explorer's cache.
    """
    declared = {k.name: k for k in HEURISTIC_KNOBS[heuristic]}
    unknown = set(knobs) - set(declared)
    if unknown:
        raise KeyError(
            f"unknown knob(s) {sorted(unknown)} for heuristic "
            f"{heuristic!r}; declared: {sorted(declared)}"
        )
    for name, value in knobs.items():
        if value not in declared[name].values:
            raise ValueError(
                f"{heuristic}.{name}: value {value!r} not on the "
                f"declared grid {declared[name].values!r}"
            )
