"""Partition evaluation by actual scheduling.

A partition's latency is *not* the sum of its task times: software
serializes on the processor, hardware tasks overlap each other (up to
the co-processor's thread count) and overlap software, and every
boundary-crossing edge pays the communication model.  Evaluating with a
real list schedule is what gives the paper's "concurrency" and
"communication" factors teeth (experiments E9, E11).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cosim.trace import COMM, TASK, Tracer
from repro.estimate.incremental import (
    entry_key,
    requirements_from_task,
    shared_area,
)
from repro.graph.algorithms import b_levels
from repro.partition.problem import PartitionProblem


@dataclass(frozen=True)
class Evaluation:
    """Measured properties of one partition."""

    latency_ns: float
    hw_area: float
    sw_size: float
    comm_ns: float
    cpu_busy_ns: float
    hw_busy_ns: float
    deadline_met: bool
    start_times: Dict[str, float] = field(default_factory=dict, hash=False,
                                          compare=False)

    @property
    def overlap_fraction(self) -> float:
        """How much of the makespan both domains were busy — the realized
        hardware/software concurrency."""
        if self.latency_ns <= 0:
            return 0.0
        return min(self.cpu_busy_ns, self.hw_busy_ns) / self.latency_ns


def hardware_area(
    problem: PartitionProblem, hw_tasks: Iterable[str]
) -> float:
    """Area of the hardware partition, with or without sharing."""
    hw = sorted(set(hw_tasks))
    if not hw:
        return 0.0
    if not problem.use_sharing:
        return sum(problem.graph.task(name).hw_area for name in hw)
    entries = tuple(sorted(
        entry_key(
            requirements_from_task(task),
            registers=max(2, int(task.sw_size / 8)),
            states=max(4, int(task.hw_time)),
        )
        for task in (problem.graph.task(name) for name in hw)
    ))
    return shared_area(entries)


def evaluate_partition(
    problem: PartitionProblem,
    hw_tasks: Iterable[str],
    tracer: Optional[Tracer] = None,
) -> Evaluation:
    """List-schedule the partitioned graph and measure it.

    Resources: one CPU (software tasks serialize) and
    ``problem.hw_parallelism`` hardware controllers (None = one per
    task).  A task becomes ready when every predecessor has finished
    *and* its data has crossed the boundary if needed; boundary edges pay
    ``problem.comm.transfer_ns(volume)``.

    Pass a :class:`repro.cosim.trace.Tracer` to capture the schedule as
    a trace: one ``task`` record per execution span (with its domain and
    unit) and one ``comm`` record per boundary crossing, timestamped on
    the analytic timeline.
    """
    graph = problem.graph
    hw: Set[str] = set(hw_tasks)
    unknown = hw - set(graph.task_names)
    if unknown:
        raise KeyError(f"unknown tasks in partition: {sorted(unknown)}")

    priority = b_levels(graph, weight=lambda t: min(t.sw_time, t.hw_time))
    order = {name: i for i, name in enumerate(graph.task_names)}

    n_hw_units = (
        problem.hw_parallelism
        if problem.hw_parallelism is not None
        else max(1, len(hw))
    )
    cpu_free = 0.0
    hw_free = [0.0] * n_hw_units

    finish: Dict[str, float] = {}
    start: Dict[str, float] = {}
    comm_total = 0.0
    cpu_busy = 0.0
    hw_busy = 0.0

    pending = {
        name: len(graph.predecessors(name)) for name in graph.task_names
    }
    data_ready: Dict[str, float] = {name: 0.0 for name in graph.task_names}
    ready = [
        (-priority[n], order[n], n)
        for n in graph.task_names if pending[n] == 0
    ]
    heapq.heapify(ready)

    while ready:
        _negp, _o, name = heapq.heappop(ready)
        task = graph.task(name)
        in_hw = name in hw
        duration = task.hw_time if in_hw else task.sw_time
        if in_hw:
            unit = min(range(n_hw_units), key=lambda i: hw_free[i])
            begin = max(data_ready[name], hw_free[unit])
            hw_free[unit] = begin + duration
            hw_busy += duration
        else:
            begin = max(data_ready[name], cpu_free)
            cpu_free = begin + duration
            cpu_busy += duration
        start[name] = begin
        finish[name] = begin + duration
        if tracer is not None:
            tracer.emit(
                TASK, name, time=begin, domain="hw" if in_hw else "sw",
                unit=(f"hw{unit}" if in_hw else "cpu"), duration=duration,
            )
            tracer.metrics.counter(
                f"partition.{'hw' if in_hw else 'sw'}.tasks"
            ).inc()
            tracer.metrics.histogram(
                f"partition.{'hw' if in_hw else 'sw'}.exec_ns"
            ).observe(duration)
        for edge in graph.out_edges(name):
            crosses = (edge.src in hw) != (edge.dst in hw)
            delay = problem.comm.transfer_ns(edge.volume) if crosses else 0.0
            if crosses:
                comm_total += delay
                if tracer is not None:
                    tracer.emit(
                        COMM, f"{edge.src}->{edge.dst}", time=finish[name],
                        volume=edge.volume, delay=delay,
                    )
                    tracer.metrics.histogram(
                        "partition.comm_ns"
                    ).observe(delay)
            arrival = finish[name] + delay
            if arrival > data_ready[edge.dst]:
                data_ready[edge.dst] = arrival
            pending[edge.dst] -= 1
            if pending[edge.dst] == 0:
                heapq.heappush(
                    ready,
                    (-priority[edge.dst], order[edge.dst], edge.dst),
                )

    if len(finish) != len(graph):
        raise RuntimeError("scheduling did not reach every task")

    latency = max(finish.values(), default=0.0)
    area = hardware_area(problem, hw)
    sw_size = sum(
        graph.task(n).sw_size for n in graph.task_names if n not in hw
    )
    deadline_met = (
        problem.deadline_ns is None or latency <= problem.deadline_ns
    )
    return Evaluation(
        latency_ns=latency,
        hw_area=area,
        sw_size=sw_size,
        comm_ns=comm_total,
        cpu_busy_ns=cpu_busy,
        hw_busy_ns=hw_busy,
        deadline_met=deadline_met,
        start_times=start,
    )
