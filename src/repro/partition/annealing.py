"""Simulated-annealing partitioning.

Random single-task flips under a geometric cooling schedule.  Slower
than greedy/KL but explores the space more broadly; the benchmarks use
it as the quality reference on small instances.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, Iterable, Optional

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def simulated_annealing(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    rng: Optional[random.Random] = None,
    seed_hw: Iterable[str] = (),
    initial_temperature: Optional[float] = None,
    cooling: float = 0.95,
    steps_per_temperature: int = 20,
    final_temperature_ratio: float = 1e-3,
    seed: Optional[int] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run simulated annealing from ``seed_hw``.

    The initial temperature defaults to the cost of the seed partition
    (so early uphill moves of a few percent are freely accepted), and the
    schedule cools geometrically until
    ``initial * final_temperature_ratio``.

    The random trajectory is controlled by ``seed`` (an integer) or
    ``rng`` (a ``random.Random``), never both; with neither, the
    historical default ``random.Random(0)`` applies.  An attached
    ``probe`` receives one convergence record per temperature level
    (current cost, best cost, temperature, accepted/rejected counts) —
    compact enough for long schedules, detailed enough to plot the
    cooling trajectory.
    """
    rng = resolve_rng(seed, rng)
    names = problem.graph.task_names
    hw = frozenset(seed_hw)
    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    best = (cost, hw, breakdown, evaluation)
    moves = 0

    temperature = (
        initial_temperature if initial_temperature is not None
        else max(abs(cost), 1.0) * 0.1
    )
    floor = temperature * final_temperature_ratio
    if probe is not None:
        probe.record("annealing", cost, temperature=temperature,
                     accepted_moves=0, rejected_moves=0)
    while temperature > floor:
        level_accepted = 0
        level_rejected = 0
        for _ in range(steps_per_temperature):
            name = rng.choice(names)
            candidate = hw - {name} if name in hw else hw | {name}
            cand_cost, cand_break, cand_eval = partition_cost(
                problem, candidate, weights
            )
            moves += 1
            delta = cand_cost - cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                level_accepted += 1
                hw, cost = candidate, cand_cost
                breakdown, evaluation = cand_break, cand_eval
                if cost < best[0]:
                    best = (cost, hw, breakdown, evaluation)
            else:
                level_rejected += 1
        if probe is not None:
            probe.record(
                "annealing", cost, best_cost=best[0],
                accepted=level_accepted > 0,
                temperature=temperature,
                accepted_moves=level_accepted,
                rejected_moves=level_rejected,
            )
        temperature *= cooling
    cost, hw, breakdown, evaluation = best
    return PartitionResult(
        problem=problem,
        hw_tasks=hw,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="annealing",
        moves_evaluated=moves,
    )
