"""Greedy best-improvement partitioning.

Starts from a seed (all-software by default) and repeatedly applies the
single task move (SW→HW or HW→SW) that most improves the six-factor
cost, until no move improves it.  Simple, fast, and the baseline every
other algorithm is compared against.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Optional

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def greedy_partition(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    seed_hw: Iterable[str] = (),
    max_iterations: int = 1000,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run greedy best-improvement migration.

    Deterministic: ``seed``/``rng`` are accepted for interface
    uniformity with the stochastic heuristics and ignored.  An attached
    ``probe`` receives one convergence record per accepted migration.
    """
    resolve_rng(seed, rng)  # validate the uniform interface contract
    hw = frozenset(seed_hw)
    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    moves = 0
    if probe is not None:
        probe.record("greedy", cost, moves_evaluated=moves, task=None)
    for _ in range(max_iterations):
        best: Optional[tuple] = None
        for name in problem.graph.task_names:
            candidate = hw - {name} if name in hw else hw | {name}
            cand_cost, cand_break, cand_eval = partition_cost(
                problem, candidate, weights
            )
            moves += 1
            if cand_cost < cost - 1e-9:
                key = (cand_cost, name)
                if best is None or key < best[:2]:
                    best = (cand_cost, name, candidate, cand_break, cand_eval)
        if best is None:
            break
        cost, _name, hw, breakdown, evaluation = best
        if probe is not None:
            probe.record("greedy", cost, moves_evaluated=moves, task=_name)
    return PartitionResult(
        problem=problem,
        hw_tasks=hw,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="greedy",
        moves_evaluated=moves,
    )
