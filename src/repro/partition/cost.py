"""The six-factor partitioning cost function.

Section 3.3 enumerates the considerations a partitioner may weigh; this
module makes each an explicit, individually-weighted (and individually
*ablatable*) term:

1. **Performance requirements** — latency, with a large penalty when the
   deadline is missed ("functions that have a great impact on the
   overall performance ... may need to be implemented in hardware").
2. **Implementation cost** — hardware area (sharing-aware), plus a large
   penalty for exceeding the area budget.
3. **Modifiability** — putting likely-to-change functions in hardware is
   penalized ("sometimes a software implementation is desired so that
   the function or algorithm can be easily changed").
4. **Nature of computation** — mismatch penalty: highly parallel
   computations in software, and strictly serial ones in hardware,
   both waste their medium.
5. **Concurrency** — reward realized hardware/software overlap
   (Type II systems: "the best system performance may be achieved by
   exploiting concurrency").
6. **Communication** — the boundary-crossing transfer time ("favors
   partitions that localize communication").

The evaluation-derived terms (1, 5, 6) come from the schedule in
:mod:`repro.partition.evaluate`; the structural terms (2, 3, 4) come
from the task characterizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.partition.evaluate import Evaluation, evaluate_partition
from repro.partition.problem import PartitionProblem

#: Penalty multiplier applied to constraint violations (deadline, area).
VIOLATION_PENALTY = 10.0


@dataclass(frozen=True)
class CostWeights:
    """Per-factor weights.  Setting one to 0 ablates that factor."""

    performance: float = 1.0
    implementation_cost: float = 0.05
    modifiability: float = 20.0
    nature: float = 0.3
    concurrency: float = 0.5
    communication: float = 1.0

    def ablate(self, factor: str) -> "CostWeights":
        """A copy with one factor zeroed (for experiment E11)."""
        if not hasattr(self, factor):
            raise AttributeError(f"unknown factor {factor!r}")
        return replace(self, **{factor: 0.0})

    @classmethod
    def factors(cls) -> Tuple[str, ...]:
        """The six factor names, in the paper's order."""
        return (
            "performance",
            "implementation_cost",
            "modifiability",
            "nature",
            "concurrency",
            "communication",
        )


def cost_terms(
    problem: PartitionProblem,
    evaluation: Evaluation,
    hw_tasks: Iterable[str],
) -> Dict[str, float]:
    """The raw (unweighted) value of each factor term."""
    graph = problem.graph
    hw = set(hw_tasks)

    # 1. performance: latency, heavily penalized beyond the deadline
    latency = evaluation.latency_ns
    performance = latency
    if problem.deadline_ns is not None and latency > problem.deadline_ns:
        performance += VIOLATION_PENALTY * (latency - problem.deadline_ns)

    # 2. implementation cost: area, heavily penalized beyond the budget
    area_term = evaluation.hw_area
    if (problem.hw_area_budget is not None
            and evaluation.hw_area > problem.hw_area_budget):
        area_term += VIOLATION_PENALTY * (
            evaluation.hw_area - problem.hw_area_budget
        )

    # 3. modifiability: likely-to-change functionality frozen in silicon
    # (summed in sorted order: float addition is non-associative, and
    # set iteration order varies with PYTHONHASHSEED — a hash-order sum
    # would differ by an ULP between interpreters, breaking the
    # byte-identical-resume guarantee of the campaign store)
    modifiability = sum(graph.task(n).modifiability for n in sorted(hw))

    # 4. nature of computation: medium mismatch
    nature = 0.0
    for name in graph.task_names:
        task = graph.task(name)
        if name in hw:
            # serial computations gain little in hardware
            if task.parallelism < 2.0:
                nature += task.sw_time * (2.0 - task.parallelism)
        else:
            # parallel computations squandered on a serial processor
            nature += task.sw_time * max(0.0, task.parallelism - 2.0) / 2.0

    # 5. concurrency: reward realized overlap (negative term)
    concurrency = -evaluation.overlap_fraction * latency

    # 6. communication: boundary-crossing time
    communication = evaluation.comm_ns

    return {
        "performance": performance,
        "implementation_cost": area_term,
        "modifiability": modifiability,
        "nature": nature,
        "concurrency": concurrency,
        "communication": communication,
    }


def partition_cost(
    problem: PartitionProblem,
    hw_tasks: Iterable[str],
    weights: CostWeights = CostWeights(),
    evaluation: Evaluation = None,
) -> Tuple[float, Dict[str, float], Evaluation]:
    """Scalar cost of a partition plus the weighted per-factor breakdown.

    Returns ``(cost, breakdown, evaluation)``; pass a pre-computed
    ``evaluation`` to avoid re-scheduling.
    """
    hw = frozenset(hw_tasks)
    if evaluation is None:
        evaluation = evaluate_partition(problem, hw)
    raw = cost_terms(problem, evaluation, hw)
    breakdown = {
        name: getattr(weights, name) * value for name, value in raw.items()
    }
    return sum(breakdown.values()), breakdown, evaluation
