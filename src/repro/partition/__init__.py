"""Hardware/software partitioning (Section 3.3 of the paper).

The package separates three concerns:

* :mod:`repro.partition.problem` — *what is being partitioned*: a task
  graph, a communication model, resource constraints;
* :mod:`repro.partition.evaluate` — *what a partition is worth*: an
  actual list schedule of the partitioned graph (software serialized on
  the processor, hardware on the co-processor's controllers,
  communication charged on boundary edges) plus a sharing-aware area
  estimate;
* :mod:`repro.partition.cost` — *how factors combine*: the paper's six
  partitioning factors (performance requirements, implementation cost,
  modifiability, nature of computation, concurrency, communication) as a
  weighted cost, each term individually ablatable (experiment E11);

and six algorithms (registered by short name in :data:`HEURISTICS`):

* :func:`repro.partition.greedy.greedy_partition` — best-improvement
  migration;
* :func:`repro.partition.kl.kernighan_lin` — KL-style passes with locking;
* :func:`repro.partition.annealing.simulated_annealing`;
* :func:`repro.partition.vulcan.vulcan_partition` — hardware-first
  extraction (Gupta & De Micheli [6]);
* :func:`repro.partition.cosyma.cosyma_partition` — software-first
  extraction of hot spots (Henkel & Ernst [17]);
* :func:`repro.partition.gclp.gclp_partition` — single-pass global
  criticality / local phase (Kalavade & Lee [1][5]).
"""

from typing import Callable, Dict

from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.evaluate import Evaluation, evaluate_partition
from repro.partition.cost import CostWeights, partition_cost
from repro.partition.seeding import (
    ProgressProbe,
    ProgressRecord,
    resolve_rng,
)
from repro.partition.knobs import (
    HEURISTIC_KNOBS,
    Knob,
    default_knobs,
    validate_knobs,
)
from repro.partition.greedy import greedy_partition
from repro.partition.kl import kernighan_lin
from repro.partition.annealing import simulated_annealing
from repro.partition.vulcan import vulcan_partition
from repro.partition.cosyma import cosyma_partition
from repro.partition.gclp import gclp_partition

#: The six heuristics by short name, each callable through the uniform
#: signature ``fn(problem, weights=..., seed=..., probe=...)``
#: (stochastic ones honour the seed; deterministic ones accept and
#: ignore it; all report convergence to an attached
#: :class:`ProgressProbe`).  This is the registry the sweep engine and
#: the differential harness iterate.
HEURISTICS: Dict[str, Callable[..., PartitionResult]] = {
    "greedy": greedy_partition,
    "kl": kernighan_lin,
    "annealing": simulated_annealing,
    "vulcan": vulcan_partition,
    "cosyma": cosyma_partition,
    "gclp": gclp_partition,
}

__all__ = [
    "PartitionProblem",
    "PartitionResult",
    "Evaluation",
    "evaluate_partition",
    "CostWeights",
    "partition_cost",
    "resolve_rng",
    "ProgressProbe",
    "ProgressRecord",
    "greedy_partition",
    "kernighan_lin",
    "simulated_annealing",
    "vulcan_partition",
    "cosyma_partition",
    "gclp_partition",
    "HEURISTICS",
    "HEURISTIC_KNOBS",
    "Knob",
    "default_knobs",
    "validate_knobs",
]
