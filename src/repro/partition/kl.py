"""Kernighan–Lin-style partitioning with move locking.

Each pass tentatively moves every task exactly once (always taking the
currently best move, *even if it worsens the cost*), records the running
cost after each tentative move, then rewinds to the best prefix.  The
hill-climbing-with-lookahead structure lets KL escape local minima that
trap pure greedy migration.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def kernighan_lin(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    seed_hw: Iterable[str] = (),
    max_passes: int = 10,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run KL-style passes until a full pass yields no improvement.

    Deterministic: ``seed``/``rng`` are accepted for interface
    uniformity with the stochastic heuristics and ignored.  An attached
    ``probe`` receives one convergence record per tentative (locked)
    move, tagged with the pass number and whether the pass's best
    prefix was eventually kept.
    """
    resolve_rng(seed, rng)  # validate the uniform interface contract
    hw = frozenset(seed_hw)
    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    moves = 0
    if probe is not None:
        probe.record("kl", cost, pass_n=0, moves_evaluated=moves)

    for _pass in range(max_passes):
        locked: set = set()
        trail: List[Tuple[float, FrozenSet[str]]] = [(cost, hw)]
        current = hw
        while len(locked) < len(problem.graph):
            best: Optional[tuple] = None
            for name in problem.graph.task_names:
                if name in locked:
                    continue
                candidate = (
                    current - {name} if name in current else current | {name}
                )
                cand_cost, _b, _e = partition_cost(
                    problem, candidate, weights
                )
                moves += 1
                key = (cand_cost, name)
                if best is None or key < best[:2]:
                    best = (cand_cost, name, candidate)
            cand_cost, name, current = best
            locked.add(name)
            trail.append((cand_cost, current))
            if probe is not None:
                probe.record(
                    "kl", cand_cost, best_cost=min(t[0] for t in trail),
                    accepted=cand_cost < cost - 1e-9,
                    pass_n=_pass + 1, task=name, moves_evaluated=moves,
                )
        best_cost, best_hw = min(trail, key=lambda t: t[0])
        if best_cost < cost - 1e-9:
            cost, hw = best_cost, best_hw
        else:
            break

    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    return PartitionResult(
        problem=problem,
        hw_tasks=hw,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="kernighan-lin",
        moves_evaluated=moves,
    )
