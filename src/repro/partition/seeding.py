"""Uniform seed/RNG plumbing for the partition heuristics.

The sweep engine (:mod:`repro.sweep`) calls every heuristic through one
signature, passing a per-cell ``seed`` derived from the cell's config
fingerprint.  Stochastic heuristics must honour it; deterministic ones
accept it for interface uniformity and ignore it.  ``resolve_rng``
centralizes the rules so no heuristic hardcodes ``random.Random(0)``
in a way the caller cannot override.
"""

from __future__ import annotations

import random
from typing import Optional


def resolve_rng(
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    default_seed: int = 0,
) -> random.Random:
    """The RNG a heuristic should draw from.

    Exactly one of ``seed`` and ``rng`` may be given: an explicit RNG
    wins (the caller manages its state), a seed builds a fresh
    ``random.Random(seed)``, and neither falls back to
    ``random.Random(default_seed)`` — the historical behaviour, kept so
    results without explicit seeding stay reproducible.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass seed or rng, not both")
        return rng
    return random.Random(default_seed if seed is None else seed)
