"""Uniform seed/RNG plumbing and convergence telemetry for the
partition heuristics.

The sweep engine (:mod:`repro.sweep`) calls every heuristic through one
signature, passing a per-cell ``seed`` derived from the cell's config
fingerprint.  Stochastic heuristics must honour it; deterministic ones
accept it for interface uniformity and ignore it.  ``resolve_rng``
centralizes the rules so no heuristic hardcodes ``random.Random(0)``
in a way the caller cannot override.

:class:`ProgressProbe` is the second shared hook: every heuristic
accepts ``probe=None`` and, when one is attached, reports each
iteration of its search — current cost, best cost so far, whether the
move was accepted, and algorithm-specific detail (annealing
temperature, GCLP global criticality, ...).  The same zero-cost
discipline as the kernel tracer applies: heuristic hot paths guard
every report with a single ``if probe is not None`` and allocate
nothing telemetry-related when no probe is attached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


def resolve_rng(
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    default_seed: int = 0,
) -> random.Random:
    """The RNG a heuristic should draw from.

    Exactly one of ``seed`` and ``rng`` may be given: an explicit RNG
    wins (the caller manages its state), a seed builds a fresh
    ``random.Random(seed)``, and neither falls back to
    ``random.Random(default_seed)`` — the historical behaviour, kept so
    results without explicit seeding stay reproducible.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass seed or rng, not both")
        return rng
    return random.Random(default_seed if seed is None else seed)


@dataclass(slots=True)
class ProgressRecord:
    """One iteration of one heuristic's search trajectory."""

    algorithm: str
    iteration: int
    cost: float
    best_cost: float
    accepted: bool
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form."""
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "iteration": self.iteration,
            "cost": self.cost,
            "best_cost": self.best_cost,
            "accepted": self.accepted,
        }
        out.update(self.detail)
        return out


class ProgressProbe:
    """Collects per-iteration convergence records from the heuristics.

    One probe can serve several heuristic runs: records are tagged with
    the algorithm name and iteration numbers count up independently per
    algorithm.  An optional ``sink`` callable receives each record as
    it is made (the span tracer uses this to turn convergence points
    into trace events); the records list remains the source of truth.
    """

    __slots__ = ("records", "_iterations", "_sink")

    def __init__(
        self,
        sink: Optional[Callable[[ProgressRecord], None]] = None,
    ) -> None:
        self.records: List[ProgressRecord] = []
        self._iterations: Dict[str, int] = {}
        self._sink = sink

    def record(
        self,
        algorithm: str,
        cost: float,
        best_cost: Optional[float] = None,
        accepted: bool = True,
        **detail: Any,
    ) -> None:
        """Report one iteration.  Iteration numbers are assigned here —
        0, 1, 2, ... per algorithm — so streams are monotone by
        construction."""
        iteration = self._iterations.get(algorithm, 0)
        self._iterations[algorithm] = iteration + 1
        rec = ProgressRecord(
            algorithm, iteration, cost,
            cost if best_cost is None else best_cost,
            accepted, detail,
        )
        self.records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    # ------------------------------------------------------------------
    def for_algorithm(self, algorithm: str) -> List[ProgressRecord]:
        """This algorithm's records, in iteration order."""
        return [r for r in self.records if r.algorithm == algorithm]

    def algorithms(self) -> List[str]:
        """Algorithm names present, sorted."""
        return sorted({r.algorithm for r in self.records})

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All records in JSON-friendly form (worker serialization)."""
        return [r.to_dict() for r in self.records]

    def extend_from_dicts(self, records: List[Dict[str, Any]]) -> None:
        """Fold serialized records (a worker's :meth:`to_dicts`) back
        in, preserving their original iteration numbers.  The sink is
        *not* fired: merged records were already sunk where they were
        recorded (the worker's span events travel with its spans)."""
        for data in records:
            data = dict(data)
            self.records.append(ProgressRecord(
                data.pop("algorithm"),
                data.pop("iteration"),
                data.pop("cost"),
                data.pop("best_cost"),
                data.pop("accepted"),
                data,
            ))

    def convergence_table(
        self,
        algorithm: str,
        width: int = 40,
        max_rows: Optional[int] = None,
    ) -> str:
        """An aligned text table of one algorithm's trajectory, with a
        bar per iteration scaled to the cost range.  ``max_rows`` elides
        the middle of long trajectories (half head, half tail)."""
        records = self.for_algorithm(algorithm)
        if not records:
            return f"{algorithm}: (no records)"
        costs = [r.cost for r in records]
        lo, hi = min(costs), max(costs)
        span = max(hi - lo, 1e-12)
        lines = [
            f"{algorithm}: {len(records)} iterations, "
            f"cost {costs[0]:.2f} -> {records[-1].best_cost:.2f} (best)"
        ]
        header = f"  {'iter':>5} {'cost':>12} {'best':>12} {'acc':>4}"
        lines.append(header)
        shown = records
        elided = 0
        if max_rows is not None and len(records) > max_rows:
            head = max_rows // 2 + max_rows % 2
            tail = max_rows // 2
            elided = len(records) - head - tail
            shown = records[:head] + records[len(records) - tail:]
        for i, r in enumerate(shown):
            if elided and i == (max_rows // 2 + max_rows % 2):
                lines.append(f"  {'...':>5} ({elided} iterations elided)")
            bar = "#" * max(1, int(round((r.cost - lo) / span * width)))
            lines.append(
                f"  {r.iteration:>5} {r.cost:>12.2f} {r.best_cost:>12.2f} "
                f"{'yes' if r.accepted else 'no':>4}  {bar}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One line per algorithm: iterations, acceptance rate, best."""
        lines: List[str] = []
        for name in self.algorithms():
            records = self.for_algorithm(name)
            accepted = sum(1 for r in records if r.accepted)
            lines.append(
                f"{name}: {len(records)} iterations, "
                f"{accepted}/{len(records)} accepted, "
                f"best cost {min(r.best_cost for r in records):.2f}"
            )
        return "\n".join(lines) if lines else "(no convergence records)"

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"ProgressProbe({len(self.records)} records, "
            f"{len(self._iterations)} algorithms)"
        )
