"""The partitioning problem and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, TYPE_CHECKING

from repro.estimate.communication import CommModel, DEFAULT
from repro.graph.taskgraph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partition.cost import CostWeights
    from repro.partition.evaluate import Evaluation


@dataclass
class PartitionProblem:
    """One hardware/software partitioning instance.

    * ``graph`` — the task graph (times in ns, areas in gates);
    * ``comm`` — boundary-crossing cost model;
    * ``hw_area_budget`` — maximum co-processor area (None = unbounded);
    * ``deadline_ns`` — end-to-end latency requirement (None = soft);
    * ``hw_parallelism`` — concurrent controller/datapath pairs in the
      co-processor: 1 models the single-threaded co-processor of
      Figure 8, larger values the multi-threaded co-processor of
      Figure 9, None models fully-parallel dedicated hardware;
    * ``use_sharing`` — estimate hardware area with functional-unit
      sharing (the [18] estimator) instead of naive addition.
    """

    graph: TaskGraph
    comm: CommModel = DEFAULT
    hw_area_budget: Optional[float] = None
    deadline_ns: Optional[float] = None
    hw_parallelism: Optional[int] = 1
    use_sharing: bool = True

    def __post_init__(self) -> None:
        self.graph.validate()
        if self.hw_parallelism is not None and self.hw_parallelism < 1:
            raise ValueError("hw_parallelism must be >= 1 or None")
        if self.hw_area_budget is not None and self.hw_area_budget < 0:
            raise ValueError("hw_area_budget must be >= 0")

    @classmethod
    def from_task_graph(
        cls,
        graph: TaskGraph,
        hw_area_budget: Optional[float] = None,
        deadline_ns: Optional[float] = None,
        comm: CommModel = DEFAULT,
        hw_parallelism: Optional[int] = 1,
    ) -> "PartitionProblem":
        """Convenience constructor used throughout examples and docs."""
        return cls(
            graph=graph,
            comm=comm,
            hw_area_budget=hw_area_budget,
            deadline_ns=deadline_ns,
            hw_parallelism=hw_parallelism,
        )

    @property
    def all_sw(self) -> FrozenSet[str]:
        """The all-software partition."""
        return frozenset()

    @property
    def all_hw(self) -> FrozenSet[str]:
        """The all-hardware partition."""
        return frozenset(self.graph.task_names)


@dataclass
class PartitionResult:
    """The outcome of one partitioning run."""

    problem: PartitionProblem
    hw_tasks: FrozenSet[str]
    evaluation: "Evaluation"
    cost: float
    breakdown: Dict[str, float]
    algorithm: str
    moves_evaluated: int = 0

    @property
    def sw_tasks(self) -> FrozenSet[str]:
        """Tasks implemented in software."""
        return frozenset(self.problem.graph.task_names) - self.hw_tasks

    @property
    def area_feasible(self) -> bool:
        """Whether the partition respects the hardware area budget.

        Heuristics that trade budget violations against the penalty term
        may legitimately return over-budget partitions; this flag is how
        such results are marked infeasible rather than silently reported
        (the sweep tables and the differential harness key off it).
        """
        budget = self.problem.hw_area_budget
        return budget is None or self.evaluation.hw_area <= budget + 1e-9

    @property
    def feasible(self) -> bool:
        """Area budget respected *and* deadline met (when constrained)."""
        return self.area_feasible and self.evaluation.deadline_met

    def summary(self) -> str:
        """One-line report."""
        ev = self.evaluation
        deadline = (
            "met" if ev.deadline_met else "MISSED"
        ) if self.problem.deadline_ns is not None else "n/a"
        return (
            f"{self.algorithm}: {len(self.hw_tasks)} HW / "
            f"{len(self.sw_tasks)} SW tasks, latency {ev.latency_ns:.0f} ns, "
            f"area {ev.hw_area:.0f}, comm {ev.comm_ns:.0f} ns, "
            f"deadline {deadline}, cost {self.cost:.1f}"
        )
