"""GCLP partitioning (Kalavade & Lee style).

The paper's references [1]/[5] are Kalavade & Lee's DSP co-design work,
whose partitioner (Global Criticality / Local Phase) became one of the
field's standard algorithms.  One pass over the nodes in topological
order; at each node the algorithm asks *which objective should drive
this decision*:

* **global criticality** (GC): how time-critical is the design right
  now?  Estimated by scheduling the partial mapping with all unmapped
  nodes tentatively in software: GC near 1 means the deadline is in
  danger, near 0 means there is slack.
* **local phase**: is this node an *extremity* (strongly better in one
  medium) or a *repeller* (hostile to one medium)?  Quantified from the
  node's hardware speedup and area percentiles, it shifts the decision
  threshold per node.

If GC exceeds the node's threshold the node is mapped to minimize
finish time (usually hardware); otherwise to minimize cost (usually
software).  One evaluation per node makes GCLP O(n·eval) — much cheaper
than the O(n²·eval) migration heuristics — which is exactly why it was
attractive at the time.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.evaluate import evaluate_partition
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def _percentile_ranks(values: List[float]) -> List[float]:
    """Rank of each value in [0, 1] (average-free, stable)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    denominator = max(1, len(values) - 1)
    for position, index in enumerate(order):
        ranks[index] = position / denominator
    return ranks


def gclp_partition(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    base_threshold: float = 0.5,
    extremity_gain: float = 0.25,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run one GCLP pass over the task graph.

    Deterministic: ``seed``/``rng`` are accepted for interface
    uniformity with the stochastic heuristics and ignored.  An attached
    ``probe`` receives one convergence record per node decision — the
    global criticality, the node's extremity-shifted threshold, and the
    chosen side — plus one per repair-phase move.
    """
    resolve_rng(seed, rng)  # validate the uniform interface contract
    graph = problem.graph
    names = graph.task_names

    # local phase: extremity = hw-affinity (high speedup, low area)
    speedups = [graph.task(n).speedup for n in names]
    areas = [graph.task(n).hw_area for n in names]
    speedup_rank = _percentile_ranks(speedups)
    area_rank = _percentile_ranks(areas)
    # extremity in [-0.5, 0.5]: positive = hardware extremity
    extremity = {
        n: (speedup_rank[i] - area_rank[i]) / 2.0
        for i, n in enumerate(names)
    }

    deadline = problem.deadline_ns
    hw: set = set()
    moves = 0

    all_sw_latency = evaluate_partition(problem, []).latency_ns
    all_hw_latency = evaluate_partition(problem, names).latency_ns
    moves += 2

    order = graph.topological_order()
    for position, node in enumerate(order):
        # GC: how much of the remaining freedom must go to hardware?
        # pessimistic = committed mapping, everything undecided in SW;
        # optimistic  = committed mapping, everything undecided in HW.
        undecided = set(order[position:])
        pessimistic = evaluate_partition(problem, hw).latency_ns
        optimistic = evaluate_partition(problem, hw | undecided).latency_ns
        moves += 2
        target = deadline if deadline is not None else all_hw_latency
        span = max(pessimistic - optimistic, 1e-9)
        gc = min(1.0, max(0.0, (pessimistic - target) / span))

        threshold = base_threshold - extremity_gain * 2 * extremity[node]
        task = graph.task(node)
        if gc >= threshold:
            # time-critical: minimize finish time
            choose_hw = task.hw_time < task.sw_time
        else:
            # slack available: minimize cost (hardware must earn its area)
            marginal_gain = (task.sw_time - task.hw_time)
            choose_hw = (
                task.hw_area > 0
                and marginal_gain / task.hw_area > 0.5
                and extremity[node] > 0.2
            )
        applied = False
        if choose_hw:
            candidate = hw | {node}
            blocked = False
            if problem.hw_area_budget is not None:
                area = evaluate_partition(problem, candidate).hw_area
                moves += 1
                blocked = area > problem.hw_area_budget
            if not blocked:
                hw = candidate
                applied = True
        if probe is not None:
            probe.record(
                "gclp", pessimistic, accepted=applied,
                criticality=gc, threshold=threshold, task=node,
                to_hw=choose_hw, moves_evaluated=moves,
            )

    # repair phase: GCLP implementations wrap the pass in an outer loop
    # that tightens the mapping when the deadline is still missed; we
    # move the best speedup-per-area candidates until it is met (or
    # nothing is left to move / budget blocks every move).
    if deadline is not None:
        evaluation = evaluate_partition(problem, hw)
        moves += 1
        while evaluation.latency_ns > deadline and len(hw) < len(names):
            candidates = sorted(
                (n for n in names if n not in hw),
                key=lambda n: (
                    -(graph.task(n).sw_time - graph.task(n).hw_time)
                    / max(graph.task(n).hw_area, 1e-9),
                    n,
                ),
            )
            moved = False
            for node in candidates:
                candidate = hw | {node}
                cand_eval = evaluate_partition(problem, candidate)
                moves += 1
                if (problem.hw_area_budget is not None
                        and cand_eval.hw_area > problem.hw_area_budget):
                    continue
                hw = candidate
                evaluation = cand_eval
                moved = True
                if probe is not None:
                    probe.record(
                        "gclp", cand_eval.latency_ns, criticality=1.0,
                        threshold=0.0, task=node, to_hw=True,
                        repair=True, moves_evaluated=moves,
                    )
                break
            if not moved:
                break

    hw_frozen: FrozenSet[str] = frozenset(hw)
    cost, breakdown, evaluation = partition_cost(problem, hw_frozen, weights)
    return PartitionResult(
        problem=problem,
        hw_tasks=hw_frozen,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="gclp",
        moves_evaluated=moves,
    )
