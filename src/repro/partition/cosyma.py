"""Software-first partition extraction (Henkel & Ernst style).

Reference [17] of the paper: start from an all-software implementation
and move the *performance-critical regions* into hardware — "hardware/
software partitioning is aimed at moving the performance-critical
regions of software into hardware", with "performance requirements and
implementation cost ... the principle factors".

Candidates are ranked by speedup-per-area (the latency the move saves,
per gate it costs); extraction continues while the deadline is missed,
then keeps going as long as a move still pays for itself under the
six-factor cost (so the algorithm is useful without a hard deadline
too).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from repro.partition.cost import CostWeights, partition_cost
from repro.partition.evaluate import evaluate_partition, hardware_area
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.seeding import ProgressProbe, resolve_rng


def cosyma_partition(
    problem: PartitionProblem,
    weights: CostWeights = CostWeights(),
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    probe: Optional[ProgressProbe] = None,
) -> PartitionResult:
    """Run software-first hot-spot extraction.

    Deterministic: ``seed``/``rng`` are accepted for interface
    uniformity with the stochastic heuristics and ignored.  An attached
    ``probe`` receives one convergence record per extraction (the task
    moved to hardware, the cost and latency after the move, and whether
    the move was a deadline-forced fallback).
    """
    resolve_rng(seed, rng)  # validate the uniform interface contract
    graph = problem.graph
    hw: FrozenSet[str] = frozenset()
    cost, breakdown, evaluation = partition_cost(problem, hw, weights)
    moves = 0
    if probe is not None:
        probe.record("cosyma", cost, task=None,
                     latency_ns=evaluation.latency_ns, forced=False)

    while True:
        deadline_missed = (
            problem.deadline_ns is not None
            and evaluation.latency_ns > problem.deadline_ns
        )
        best = None
        fallback = None
        for name in graph.task_names:
            if name in hw:
                continue
            candidate = hw | {name}
            area = hardware_area(problem, candidate)
            if (problem.hw_area_budget is not None
                    and area > problem.hw_area_budget):
                continue
            cand_cost, cand_break, cand_eval = partition_cost(
                problem, candidate, weights
            )
            moves += 1
            saved = evaluation.latency_ns - cand_eval.latency_ns
            added_area = max(area - evaluation.hw_area, 1e-9)
            gain = saved / added_area
            if deadline_missed:
                # most speedup per gate first, regardless of cost delta
                key = (-gain, name)
                accept = saved > 0
                # remember the least-harmful move in case nothing saves
                fb_key = (cand_eval.latency_ns, name)
                if fallback is None or fb_key < fallback[0]:
                    fallback = (fb_key, candidate, cand_cost, cand_break,
                                cand_eval)
            else:
                key = (cand_cost, name)
                accept = cand_cost < cost - 1e-9
            if accept and (best is None or key < best[0]):
                best = (key, candidate, cand_cost, cand_break, cand_eval)
        forced = False
        if best is None:
            # deadline still missed and no single move helps: force the
            # least-latency move anyway (monotone toward all-hardware,
            # which is the fastest partition available)
            if deadline_missed and fallback is not None:
                best = fallback
                forced = True
            else:
                break
        prev_hw = hw
        _key, hw, cost, breakdown, evaluation = best
        if probe is not None:
            extracted = next(iter(hw - prev_hw), None)
            probe.record("cosyma", cost, task=extracted,
                         latency_ns=evaluation.latency_ns, forced=forced,
                         moves_evaluated=moves)

    return PartitionResult(
        problem=problem,
        hw_tasks=hw,
        evaluation=evaluation,
        cost=cost,
        breakdown=breakdown,
        algorithm="cosyma",
        moves_evaluated=moves,
    )
