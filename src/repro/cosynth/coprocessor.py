"""Application-specific co-processor synthesis (Figure 8, Section 4.5).

The Gupta–De Micheli-style flow [6]: a set of behaviors (CDFGs) with a
dataflow structure is characterized on both sides of the boundary —
software times by *running the generated R32 code*, hardware
area/latency by *running high-level synthesis* — then partitioned, and
the chosen hardware behaviors are kept as synthesized datapaths while
the software behaviors are kept as compiled kernels.

"We consider this to be an example of both hardware/software
co-synthesis and hardware/software partitioning": the flow exercises
both, plus the co-verification path (every behavior's two
implementations are checked against the CDFG reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.estimate.communication import CommModel, TIGHT
from repro.estimate.software import Processor, measure_cdfg_software
from repro.graph.cdfg import CDFG
from repro.graph.taskgraph import Task, TaskGraph
from repro.hls.synthesize import HlsConstraints, HlsResult, synthesize
from repro.isa.codegen import CompiledKernel, compile_cdfg
from repro.partition.cost import CostWeights
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.cosyma import cosyma_partition
from repro.partition.greedy import greedy_partition
from repro.partition.kl import kernighan_lin
from repro.partition.vulcan import vulcan_partition

ALGORITHMS: Dict[str, Callable[..., PartitionResult]] = {
    "greedy": greedy_partition,
    "kl": kernighan_lin,
    "vulcan": vulcan_partition,
    "cosyma": cosyma_partition,
}


@dataclass
class BehaviorImpl:
    """Both implementations of one behavior plus its characterization."""

    name: str
    cdfg: CDFG
    task: Task
    hls: HlsResult
    software: CompiledKernel

    def verify(self, inputs: Dict[str, int]) -> bool:
        """Check hardware, software, and reference agree on ``inputs``."""
        reference = self.cdfg.evaluate(dict(inputs))
        hw = self.hls.simulate(dict(inputs))
        sw, _cycles = self.software.run(dict(inputs))
        return hw == reference and sw == reference


@dataclass
class CoprocessorDesign:
    """The synthesized Figure 8 system."""

    behaviors: Dict[str, BehaviorImpl]
    partition: PartitionResult

    @property
    def hw_behaviors(self) -> List[str]:
        """Behaviors implemented on the co-processor."""
        return sorted(self.partition.hw_tasks)

    @property
    def sw_behaviors(self) -> List[str]:
        """Behaviors left on the instruction-set processor."""
        return sorted(self.partition.sw_tasks)

    @property
    def coprocessor_area(self) -> float:
        """Shared-datapath area of the hardware partition."""
        return self.partition.evaluation.hw_area

    @property
    def latency_ns(self) -> float:
        return self.partition.evaluation.latency_ns

    def speedup_vs_all_software(self) -> float:
        """End-to-end speedup vs the all-software implementation."""
        from repro.partition.evaluate import evaluate_partition

        all_sw = evaluate_partition(self.partition.problem, [])
        return all_sw.latency_ns / max(self.latency_ns, 1e-9)

    def verify_all(self, vector: int = 3) -> bool:
        """Co-verify every behavior with a deterministic input vector."""
        for impl in self.behaviors.values():
            inputs = {
                op.name: (vector * 17 + i * 7 + 1) & 0xFFFF
                for i, op in enumerate(impl.cdfg.inputs())
            }
            if not impl.verify(inputs):
                return False
        return True

    def summary(self) -> str:
        return (
            f"coprocessor: HW={self.hw_behaviors} SW={self.sw_behaviors} "
            f"area={self.coprocessor_area:.0f} "
            f"latency={self.latency_ns:.0f} ns "
            f"speedup={self.speedup_vs_all_software():.2f}x"
        )


def characterize_behavior(
    name: str,
    cdfg: CDFG,
    processor: Optional[Processor] = None,
    hls_constraints: Optional[HlsConstraints] = None,
) -> BehaviorImpl:
    """Implement one behavior both ways and derive its Task record.

    Software time comes from cycle-accurate execution of the generated
    code; hardware time/area from actual synthesis — the estimates a
    1996 flow could only approximate, this reproduction measures.
    """
    processor = processor or Processor("r32")
    hls = synthesize(cdfg, hls_constraints)
    software = compile_cdfg(cdfg)
    sw = measure_cdfg_software(cdfg, processor)
    n_compute = max(1, len(cdfg.compute_ops()))
    parallelism = max(1.0, n_compute / max(1, cdfg.depth()))
    task = Task(
        name=name,
        sw_time=max(sw.time_ns, 1e-9),
        hw_time=max(hls.latency_ns, 1e-9),
        hw_area=hls.area,
        sw_size=float(software.code_size),
        parallelism=parallelism,
    )
    return BehaviorImpl(
        name=name, cdfg=cdfg, task=task, hls=hls, software=software
    )


def synthesize_coprocessor(
    behaviors: Dict[str, CDFG],
    dataflow: Sequence[Tuple[str, str, float]] = (),
    deadline_ns: Optional[float] = None,
    hw_area_budget: Optional[float] = None,
    comm: CommModel = TIGHT,
    algorithm: str = "cosyma",
    weights: CostWeights = CostWeights(),
    processor: Optional[Processor] = None,
) -> CoprocessorDesign:
    """Run the full Figure 8 flow.

    ``behaviors`` maps names to CDFGs; ``dataflow`` lists
    ``(src, dst, words)`` edges between them.
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; "
            f"choose from {sorted(ALGORITHMS)}"
        )
    impls = {
        name: characterize_behavior(name, cdfg, processor)
        for name, cdfg in behaviors.items()
    }
    graph = TaskGraph("coprocessor")
    for impl in impls.values():
        graph.add_task(impl.task)
    for src, dst, volume in dataflow:
        graph.add_edge(src, dst, volume)
    problem = PartitionProblem(
        graph=graph,
        comm=comm,
        hw_area_budget=hw_area_budget,
        deadline_ns=deadline_ns,
        hw_parallelism=1,  # Figure 8: a single-threaded co-processor
    )
    partition = ALGORITHMS[algorithm](problem, weights=weights)
    return CoprocessorDesign(behaviors=impls, partition=partition)
