"""Multi-threaded co-processor synthesis (Figure 9, Section 4.5.1).

Adams & Thomas [10]: the co-processor comprises several
controller/datapath pairs, so hardware tasks can execute concurrent
threads of control.  "The hardware/software partitioning problem is
further complicated by the opportunity to exploit parallelism both
between hardware and software components and among hardware components
... partitioning is done in a way that considers minimizing the
communication between the hardware and software components and
maximizing the concurrency."

The flow:

1. sweep the controller count ``k`` from 1 to ``max_threads``;
2. for each ``k``, partition with ``hw_parallelism=k`` under the full
   six-factor cost (communication + concurrency aware), charging
   ``controller_overhead`` area per extra controller;
3. pick the best (cost, then fewer controllers).

``communication_blind_partition`` runs the same sweep with the
communication and concurrency factors ablated — the comparison behind
experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimate.communication import CommModel, TIGHT
from repro.graph.algorithms import communication_clusters, inter_cluster_volume
from repro.graph.taskgraph import TaskGraph
from repro.partition.cost import CostWeights
from repro.partition.kl import kernighan_lin
from repro.partition.problem import PartitionProblem, PartitionResult

#: Extra area per additional controller/datapath pair.
CONTROLLER_OVERHEAD = 60.0


@dataclass
class MultithreadDesign:
    """The chosen thread count and partition."""

    threads: int
    partition: PartitionResult
    controller_area: float
    sweep: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def latency_ns(self) -> float:
        return self.partition.evaluation.latency_ns

    @property
    def total_hw_area(self) -> float:
        """Datapath area plus controller overhead."""
        return self.partition.evaluation.hw_area + self.controller_area

    @property
    def adjusted_cost(self) -> float:
        """Partition cost plus the controller-overhead term."""
        return self.partition.cost + self.controller_area * 0.05

    def hw_thread_assignment(self) -> List[List[str]]:
        """Group the hardware tasks into ``threads`` communication-
        localized clusters (the controller assignment of [10])."""
        hw = sorted(self.partition.hw_tasks)
        if not hw or self.threads <= 1:
            return [hw] if hw else []
        sub = TaskGraph("hw_only")
        graph = self.partition.problem.graph
        for name in hw:
            task = graph.task(name)
            sub.add_task(type(task)(
                name=task.name, sw_time=task.sw_time, hw_time=task.hw_time,
                hw_area=task.hw_area, sw_size=task.sw_size,
                parallelism=task.parallelism,
                modifiability=task.modifiability,
            ))
        for edge in graph.edges:
            if edge.src in sub and edge.dst in sub:
                sub.add_edge(edge.src, edge.dst, edge.volume)
        k = min(self.threads, len(hw))
        return communication_clusters(sub, k)

    def summary(self) -> str:
        return (
            f"multithread: k={self.threads}, "
            f"HW={sorted(self.partition.hw_tasks)}, "
            f"latency={self.latency_ns:.0f} ns, "
            f"hw area={self.total_hw_area:.0f}"
        )


def synthesize_multithreaded(
    graph: TaskGraph,
    deadline_ns: Optional[float] = None,
    hw_area_budget: Optional[float] = None,
    comm: CommModel = TIGHT,
    weights: CostWeights = CostWeights(),
    max_threads: int = 4,
    controller_overhead: float = CONTROLLER_OVERHEAD,
) -> MultithreadDesign:
    """Run the Figure 9 flow: sweep thread counts, keep the best."""
    if max_threads < 1:
        raise ValueError("max_threads must be >= 1")
    best: Optional[MultithreadDesign] = None
    sweep: List[Tuple[int, float]] = []
    for k in range(1, max_threads + 1):
        problem = PartitionProblem(
            graph=graph.copy(),
            comm=comm,
            hw_area_budget=hw_area_budget,
            deadline_ns=deadline_ns,
            hw_parallelism=k,
        )
        partition = kernighan_lin(problem, weights=weights)
        ctrl_area = controller_overhead * max(0, k - 1)
        design = MultithreadDesign(
            threads=k,
            partition=partition,
            controller_area=ctrl_area,
        )
        sweep.append((k, design.adjusted_cost))
        if best is None or design.adjusted_cost < best.adjusted_cost - 1e-9:
            best = design
    best.sweep = sweep
    return best


def communication_blind_partition(
    graph: TaskGraph,
    deadline_ns: Optional[float] = None,
    hw_area_budget: Optional[float] = None,
    comm: CommModel = TIGHT,
    max_threads: int = 4,
) -> MultithreadDesign:
    """The ablated baseline of experiment E9: the same sweep with the
    communication and concurrency factors zeroed out of the cost.  The
    *evaluation* still pays the real communication penalty — the
    partitioner just can't see it coming."""
    blind = CostWeights().ablate("communication").ablate("concurrency")
    return synthesize_multithreaded(
        graph,
        deadline_ns=deadline_ns,
        hw_area_budget=hw_area_budget,
        comm=comm,
        weights=blind,
        max_threads=max_threads,
    )
