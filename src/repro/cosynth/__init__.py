"""Hardware/software co-synthesis flows (Sections 3.2, 4.2, 4.5, 4.5.1).

* :mod:`repro.cosynth.multiproc` — heterogeneous multiprocessor
  synthesis (Figure 5): choose processor instances and map tasks to meet
  a deadline at minimum cost, by exact ILP (SOS [12]), vector bin
  packing (Beck [13]), or sensitivity-driven iteration (Yen–Wolf [9]).
* :mod:`repro.cosynth.coprocessor` — application-specific co-processor
  synthesis (Figure 8, Gupta–De Micheli [6]): partition behaviors
  between the instruction-set processor and a synthesized co-processor,
  then run HLS on the hardware side.
* :mod:`repro.cosynth.multithread` — multi-threaded co-processor
  synthesis (Figure 9, Adams–Thomas [10]): cluster processes to localize
  communication, choose the controller count, and partition with
  concurrency awareness.
"""

from repro.cosynth.multiproc.library import Allocation, PeInstance
from repro.cosynth.multiproc.scheduler import MultiprocSchedule, schedule_on
from repro.cosynth.multiproc.ilp import ilp_synthesis
from repro.cosynth.multiproc.binpack import binpack_synthesis
from repro.cosynth.multiproc.sensitivity import sensitivity_synthesis
from repro.cosynth.coprocessor import CoprocessorDesign, synthesize_coprocessor
from repro.cosynth.multithread import MultithreadDesign, synthesize_multithreaded

__all__ = [
    "Allocation",
    "PeInstance",
    "MultiprocSchedule",
    "schedule_on",
    "ilp_synthesis",
    "binpack_synthesis",
    "sensitivity_synthesis",
    "CoprocessorDesign",
    "synthesize_coprocessor",
    "MultithreadDesign",
    "synthesize_multithreaded",
]
