"""Heuristic multiprocessor synthesis by vector bin packing (Beck [13]).

"In [13] the processing elements are specified abstractly by their
processing capacity.  Optimization, which also involves choosing the
number and type of processing elements and mapping the tasks onto them,
is done using a vector bin packing approach."

Items are tasks; each bin is a processor instance with a two-dimensional
capacity vector (compute time within the deadline, program memory).
First-fit decreasing over the time dimension; when no open bin fits, a
new bin is opened with the cheapest type that can hold the item.  The
result is validated with the real list scheduler, shrinking the packing
capacity if precedence stretches the makespan past the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimate.communication import CommModel, DEFAULT
from repro.estimate.software import Processor, default_processor_library
from repro.graph.taskgraph import TaskGraph
from repro.cosynth.multiproc.ilp import SynthesisResult
from repro.cosynth.multiproc.library import (
    Allocation,
    PeInstance,
    execution_time,
)
from repro.cosynth.multiproc.scheduler import schedule_on


@dataclass
class _Bin:
    pe: PeInstance
    time_left: float
    mem_left: float
    tasks: List[str] = field(default_factory=list)


def binpack_synthesis(
    graph: TaskGraph,
    deadline: float,
    library: Optional[Dict[str, Processor]] = None,
    comm: CommModel = DEFAULT,
    shrink_steps: int = 3,
    capacity_shrink: float = 0.8,
) -> Optional[SynthesisResult]:
    """First-fit-decreasing vector bin packing; None if infeasible.

    Bin packing reasons about utilization, but the deadline may be bound
    by the *critical path* instead — no amount of cheap-slow processors
    helps then.  So the search escalates: first the full library at full
    capacity, then tightened packing capacities (spreading load), then
    with the slowest types dropped (forcing faster, costlier parts).
    The first allocation whose real (HEFT) schedule meets the deadline
    wins.
    """
    library = library or default_processor_library()
    by_speed = sorted(
        library.values(), key=lambda p: (p.speed_factor / p.clock_ns, p.name)
    )
    evaluations = 0
    for drop in range(len(by_speed)):
        usable = {p.name: p for p in by_speed[drop:]}
        capacity_factor = 1.0
        for _step in range(shrink_steps):
            packed = _pack(graph, deadline * capacity_factor, usable)
            capacity_factor *= capacity_shrink
            if packed is None:
                continue
            allocation, mapping = packed
            pinned = schedule_on(graph, allocation, comm, mapping=mapping)
            free = schedule_on(graph, allocation, comm)
            evaluations += 2
            best = free if free.makespan < pinned.makespan else pinned
            if best.meets(deadline):
                return SynthesisResult(
                    allocation=allocation,
                    schedule=best,
                    deadline=deadline,
                    algorithm="binpack",
                    evaluations=evaluations,
                )
    return None


def _pack(
    graph: TaskGraph,
    capacity: float,
    library: Dict[str, Processor],
) -> Optional[Tuple[Allocation, Dict[str, str]]]:
    # FFD: big items first (by reference software time)
    order = sorted(
        graph.task_names,
        key=lambda n: (-graph.task(n).sw_time, n),
    )
    types_by_cost = sorted(library.values(), key=lambda p: (p.cost, p.name))
    bins: List[_Bin] = []
    counters: Dict[str, int] = {}
    mapping: Dict[str, str] = {}

    for name in order:
        task = graph.task(name)
        placed = False
        for bin_ in bins:
            need_t = execution_time(task, bin_.pe.processor)
            if need_t <= bin_.time_left and task.sw_size <= bin_.mem_left:
                bin_.time_left -= need_t
                bin_.mem_left -= task.sw_size
                bin_.tasks.append(name)
                mapping[name] = bin_.pe.name
                placed = True
                break
        if placed:
            continue
        # open the cheapest bin type that can hold this task alone
        for proc in types_by_cost:
            need_t = execution_time(task, proc)
            if need_t <= capacity and task.sw_size <= proc.mem_words:
                idx = counters.get(proc.name, 0)
                counters[proc.name] = idx + 1
                pe = PeInstance(f"{proc.name}#{idx}", proc)
                bins.append(_Bin(
                    pe=pe,
                    time_left=capacity - need_t,
                    mem_left=proc.mem_words - task.sw_size,
                    tasks=[name],
                ))
                mapping[name] = pe.name
                placed = True
                break
        if not placed:
            return None  # no processor can run this task in time
    return Allocation([b.pe for b in bins]), mapping
