"""Heterogeneous multiprocessor co-synthesis (Figure 5 of the paper).

"The design involves both choosing the number and type of processing
elements and mapping tasks onto processing elements.  The goal is to
meet some performance objective while minimizing the cost of the
hardware."  Three synthesizers share the same problem form and the same
validating scheduler:

* :func:`repro.cosynth.multiproc.ilp.ilp_synthesis` — exact, via 0/1 ILP
  (branch-and-bound over LP relaxations), as in SOS [12];
* :func:`repro.cosynth.multiproc.binpack.binpack_synthesis` — fast
  first-fit-decreasing vector bin packing, as in Beck [13];
* :func:`repro.cosynth.multiproc.sensitivity.sensitivity_synthesis` —
  Yen–Wolf sensitivity-driven iterative improvement [9].
"""
