"""Co-simulation validation of multiprocessor synthesis results.

Figure 2 nests co-simulation around co-synthesis for a reason: a
synthesizer's claimed makespan rests on its scheduler's assumptions.
This module re-executes a :class:`MultiprocSchedule`'s *mapping* (not
its timetable) as communicating simulation processes — each processing
element is a serial resource, each cross-PE edge a message with the
communication model's latency — and reports what actually happens.

Because the simulation re-derives task start times from resource
contention and message arrival rather than trusting the schedule, any
optimism in the scheduler (lost arbitration detail, impossible overlap)
shows up as disagreement here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cosim.kernel import Event, Resource, Simulator
from repro.cosim.msglevel import Channel
from repro.cosim.trace import TASK, Tracer
from repro.estimate.communication import CommModel, DEFAULT
from repro.graph.taskgraph import TaskGraph
from repro.cosynth.multiproc.library import execution_time
from repro.cosynth.multiproc.scheduler import MultiprocSchedule


@dataclass
class MultiprocSimulation:
    """What the validation co-simulation measured."""

    latency_ns: float
    messages: int
    finish_times: Dict[str, float]
    activations: int = 0
    pe_busy_ns: Dict[str, float] = field(default_factory=dict)

    def agreement(self, schedule: MultiprocSchedule) -> float:
        """Analytic/simulated makespan ratio (1.0 = perfect)."""
        if self.latency_ns == 0:
            return 1.0
        return schedule.makespan / self.latency_ns


def simulate_schedule(
    graph: TaskGraph,
    schedule: MultiprocSchedule,
    comm: CommModel = DEFAULT,
    tracer: Optional[Tracer] = None,
) -> MultiprocSimulation:
    """Re-execute the schedule's mapping under discrete-event rules.

    Pass a :class:`repro.cosim.trace.Tracer` to get the full execution
    profile of the validation run: per-task spans (``task`` records),
    channel messages, per-PE grant queues, and per-process metrics.
    """
    sim = Simulator(tracer=tracer)
    pes = {pe.name: pe for pe in schedule.allocation.instances}

    # each PE is a serial FIFO-handoff resource from the kernel, so PE
    # contention shows up in the trace and metrics like any bus grant
    units = {name: Resource(sim, name) for name in pes}
    done = {name: Event(sim, f"{name}.done") for name in graph.task_names}
    channels: Dict[tuple, Channel] = {}
    counters = {"messages": 0}
    finish: Dict[str, float] = {}

    for edge in graph.edges:
        if schedule.mapping[edge.src] != schedule.mapping[edge.dst]:
            channels[(edge.src, edge.dst)] = Channel(
                sim, f"{edge.src}->{edge.dst}",
                latency_per_message=comm.sync_overhead_ns,
                latency_per_word=comm.word_time_ns,
            )

    busy: Dict[str, float] = {name: 0.0 for name in pes}

    def task_proc(name: str):
        for edge in graph.in_edges(name):
            key = (edge.src, name)
            if key in channels:
                yield from channels[key].receive()
            else:
                yield done[edge.src]
        pe_name = schedule.mapping[name]
        unit = units[pe_name]
        yield from unit.acquire()
        started = sim.now
        yield sim.timeout(
            execution_time(graph.task(name), pes[pe_name].processor)
        )
        unit.release()
        busy[pe_name] += sim.now - started
        if tracer is not None:
            tracer.emit(
                TASK, name, time=started, pe=pe_name,
                duration=sim.now - started,
            )
        finish[name] = sim.now
        done[name].succeed()
        for edge in graph.out_edges(name):
            key = (name, edge.dst)
            if key in channels:
                counters["messages"] += 1
                # deliver concurrently: each cross-PE edge pays its own
                # latency from the finish time, not queued behind its
                # siblings (matches the scheduler's per-edge delay)
                sim.process(
                    channels[key].send(sim.now, words=edge.volume),
                    name=f"{name}->{edge.dst}.msg",
                )

    for name in graph.task_names:
        sim.process(task_proc(name), name=name)
    sim.run()
    if len(finish) != len(graph):
        raise RuntimeError(
            "multiprocessor co-simulation deadlocked: "
            f"{sorted(set(graph.task_names) - set(finish))}"
        )
    return MultiprocSimulation(
        latency_ns=max(finish.values(), default=0.0),
        messages=counters["messages"],
        finish_times=finish,
        activations=sim.activations,
        pe_busy_ns=busy,
    )
