"""Heterogeneous list scheduling with communication delays.

The validating scheduler shared by all three multiprocessor
synthesizers: whatever allocation/mapping a synthesizer proposes, this
scheduler decides the *actual* makespan — earliest-finish-time list
scheduling (HEFT-style) with per-edge communication charged whenever
producer and consumer land on different processing elements.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimate.communication import CommModel, DEFAULT
from repro.graph.algorithms import b_levels
from repro.graph.taskgraph import TaskGraph
from repro.cosynth.multiproc.library import (
    Allocation,
    PeInstance,
    execution_time,
)


@dataclass
class MultiprocSchedule:
    """The result of scheduling a task graph on an allocation."""

    allocation: Allocation
    mapping: Dict[str, str]            # task -> PE instance name
    start: Dict[str, float]
    finish: Dict[str, float]
    comm_ns: float

    @property
    def makespan(self) -> float:
        """End-to-end latency."""
        return max(self.finish.values(), default=0.0)

    def meets(self, deadline: Optional[float]) -> bool:
        """Whether the schedule meets the deadline (None = always)."""
        return deadline is None or self.makespan <= deadline + 1e-9

    def pe_load(self) -> Dict[str, float]:
        """Busy time per PE instance."""
        load = {pe.name: 0.0 for pe in self.allocation.instances}
        for task, pe in self.mapping.items():
            load[pe] += self.finish[task] - self.start[task]
        return load

    def utilization(self) -> float:
        """Mean PE utilization over the makespan."""
        span = self.makespan
        if span <= 0 or not self.allocation.instances:
            return 0.0
        loads = self.pe_load()
        return sum(loads.values()) / (span * len(loads))


def schedule_on(
    graph: TaskGraph,
    allocation: Allocation,
    comm: CommModel = DEFAULT,
    mapping: Optional[Dict[str, str]] = None,
) -> MultiprocSchedule:
    """Schedule ``graph`` on ``allocation``.

    With ``mapping`` given, tasks are pinned (the synthesizers' proposal
    is evaluated as-is); otherwise each task greedily takes the PE that
    finishes it earliest (HEFT-style), which is how the bin-packing and
    sensitivity synthesizers let the scheduler refine their allocation.
    """
    if not allocation.instances:
        raise ValueError("allocation has no processing elements")
    pes = {pe.name: pe for pe in allocation.instances}
    if mapping:
        unknown = set(mapping.values()) - set(pes)
        if unknown:
            raise KeyError(f"mapping uses unknown PEs: {sorted(unknown)}")

    priority = b_levels(graph)
    order = {name: i for i, name in enumerate(graph.task_names)}
    pe_free = {name: 0.0 for name in pes}
    start: Dict[str, float] = {}
    finish: Dict[str, float] = {}
    placed: Dict[str, str] = {}
    comm_total = 0.0

    pending = {n: len(graph.predecessors(n)) for n in graph.task_names}
    ready = [
        (-priority[n], order[n], n)
        for n in graph.task_names if pending[n] == 0
    ]
    heapq.heapify(ready)

    def arrival(task: str, pe_name: str) -> Tuple[float, float]:
        """(data-ready time on pe, comm charged) for scheduling ``task``."""
        t, charged = 0.0, 0.0
        for edge in graph.in_edges(task):
            base = finish[edge.src]
            if placed[edge.src] != pe_name:
                delay = comm.transfer_ns(edge.volume)
                charged += delay
                base += delay
            t = max(t, base)
        return t, charged

    while ready:
        _p, _o, name = heapq.heappop(ready)
        task = graph.task(name)
        if mapping:
            candidates = [mapping[name]]
        else:
            candidates = sorted(pes)
        best = None
        for pe_name in candidates:
            ready_t, charged = arrival(name, pe_name)
            begin = max(ready_t, pe_free[pe_name])
            duration = execution_time(task, pes[pe_name].processor)
            key = (begin + duration, begin, pe_name)
            if best is None or key < best[0]:
                best = (key, pe_name, begin, duration, charged)
        _key, pe_name, begin, duration, charged = best
        placed[name] = pe_name
        start[name] = begin
        finish[name] = begin + duration
        pe_free[pe_name] = begin + duration
        comm_total += charged
        for edge in graph.out_edges(name):
            pending[edge.dst] -= 1
            if pending[edge.dst] == 0:
                heapq.heappush(
                    ready, (-priority[edge.dst], order[edge.dst], edge.dst)
                )

    if len(finish) != len(graph):
        raise RuntimeError("scheduler did not place every task")
    return MultiprocSchedule(
        allocation=allocation,
        mapping=placed,
        start=start,
        finish=finish,
        comm_ns=comm_total,
    )
