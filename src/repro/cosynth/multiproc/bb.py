"""A small exact 0/1 ILP solver: branch-and-bound over LP relaxations.

SOS [12] formulated heterogeneous multiprocessor synthesis as an ILP
and solved it exactly; we do the same with a self-contained solver:
depth-first branch-and-bound, bounding each node with the LP relaxation
from ``scipy.optimize.linprog`` (HiGHS).  Good enough for the problem
sizes the paper's era reported (tens of binary variables) and fully
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog


class IlpError(RuntimeError):
    """Raised when the solver exceeds its node budget."""


@dataclass
class ZeroOneProblem:
    """Minimize ``c @ x`` s.t. ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``,
    ``x`` binary.

    ``branch_priority`` (optional, same length as ``c``) biases variable
    selection: among fractional variables, the highest priority is
    branched first.  Structural variables (e.g. "instance used" flags)
    branched early shrink the tree dramatically.
    """

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    branch_priority: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        if self.a_ub is not None:
            self.a_ub = np.asarray(self.a_ub, dtype=float)
            self.b_ub = np.asarray(self.b_ub, dtype=float)
        if self.a_eq is not None:
            self.a_eq = np.asarray(self.a_eq, dtype=float)
            self.b_eq = np.asarray(self.b_eq, dtype=float)
        if self.branch_priority is not None:
            self.branch_priority = np.asarray(
                self.branch_priority, dtype=float
            )

    @property
    def n_vars(self) -> int:
        return len(self.c)


@dataclass
class IlpSolution:
    """An optimal binary assignment and its objective value."""

    x: np.ndarray
    value: float
    nodes: int


def solve_binary(
    problem: ZeroOneProblem,
    max_nodes: int = 20000,
    tolerance: float = 1e-6,
) -> Optional[IlpSolution]:
    """Solve to optimality; returns None if infeasible.

    Branching: most-fractional variable; the child matching the rounded
    LP value is explored first (depth-first), which finds good
    incumbents early and prunes aggressively.
    """
    n = problem.n_vars
    incumbent: Optional[np.ndarray] = None
    incumbent_value = np.inf
    nodes = 0

    # stack entries: (fixed_lo, fixed_hi) as float arrays of bounds
    stack: List[Tuple[np.ndarray, np.ndarray]] = [
        (np.zeros(n), np.ones(n))
    ]
    while stack:
        lo, hi = stack.pop()
        nodes += 1
        if nodes > max_nodes:
            raise IlpError(f"node budget {max_nodes} exhausted")
        res = linprog(
            problem.c,
            A_ub=problem.a_ub,
            b_ub=problem.b_ub,
            A_eq=problem.a_eq,
            b_eq=problem.b_eq,
            bounds=list(zip(lo, hi)),
            method="highs",
        )
        if not res.success:
            continue  # infeasible branch
        if res.fun >= incumbent_value - tolerance:
            continue  # bound prune
        x = res.x
        frac = np.abs(x - np.round(x))
        if problem.branch_priority is not None:
            fractional = frac > tolerance
            if fractional.any():
                score = np.where(
                    fractional,
                    problem.branch_priority + frac,
                    -np.inf,
                )
                branch_var = int(np.argmax(score))
            else:
                branch_var = int(np.argmax(frac))
        else:
            branch_var = int(np.argmax(frac))
        if frac[branch_var] <= tolerance:
            x_int = np.round(x)
            value = float(problem.c @ x_int)
            if value < incumbent_value - tolerance and _feasible(
                problem, x_int, tolerance
            ):
                incumbent = x_int
                incumbent_value = value
            continue
        # branch: push the less-likely child first so the preferred one
        # (matching the LP's leaning) is explored next
        prefer_one = x[branch_var] >= 0.5
        for value in ([0.0, 1.0] if prefer_one else [1.0, 0.0]):
            lo2, hi2 = lo.copy(), hi.copy()
            lo2[branch_var] = hi2[branch_var] = value
            stack.append((lo2, hi2))
    if incumbent is None:
        return None
    return IlpSolution(x=incumbent, value=incumbent_value, nodes=nodes)


def _feasible(
    problem: ZeroOneProblem, x: np.ndarray, tolerance: float
) -> bool:
    if problem.a_ub is not None:
        if np.any(problem.a_ub @ x > problem.b_ub + tolerance):
            return False
    if problem.a_eq is not None:
        if np.any(np.abs(problem.a_eq @ x - problem.b_eq) > tolerance):
            return False
    return True
