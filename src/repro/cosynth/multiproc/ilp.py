"""Exact multiprocessor synthesis via 0/1 ILP (SOS style, [12]).

"In [12] the processing elements are chosen from a library of available
microprocessors, each characterized in terms of processing speed and
cost ... The optimization is done using integer linear programming,
which yields the optimum configuration and mapping."

Formulation (the classic utilization form):

* binary ``y[k,j]`` — instance ``j`` of processor type ``k`` is used;
* binary ``x[t,k,j]`` — task ``t`` runs on instance ``(k,j)``;
* each task assigned exactly once;
* per-instance capacity: assigned execution time ≤ ``capacity_factor``
  × deadline × ``y[k,j]`` (utilization feasibility — precedence is not
  in the ILP, as in the era's formulations);
* per-instance memory: assigned code size ≤ the type's memory;
* symmetry breaking ``y[k,j+1] <= y[k,j]``;
* minimize Σ cost.

Because the ILP reasons about utilization rather than the precedence-
constrained schedule, the returned mapping is *validated with the real
list scheduler*; if the actual makespan misses the deadline the
capacity factor is tightened and the ILP re-solved (cutting-plane-lite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.estimate.communication import CommModel, DEFAULT
from repro.estimate.software import Processor, default_processor_library
from repro.graph.taskgraph import TaskGraph
from repro.cosynth.multiproc.bb import ZeroOneProblem, solve_binary
from repro.cosynth.multiproc.library import (
    Allocation,
    PeInstance,
    execution_time,
)
from repro.cosynth.multiproc.scheduler import MultiprocSchedule, schedule_on


@dataclass
class SynthesisResult:
    """Outcome of one multiprocessor synthesis run."""

    allocation: Allocation
    schedule: MultiprocSchedule
    deadline: float
    algorithm: str
    evaluations: int = 0

    @property
    def cost(self) -> float:
        return self.allocation.cost

    @property
    def feasible(self) -> bool:
        return self.schedule.meets(self.deadline)

    def summary(self) -> str:
        status = "meets" if self.feasible else "MISSES"
        return (
            f"{self.algorithm}: {self.allocation!r}, "
            f"makespan {self.schedule.makespan:.0f} ns "
            f"{status} deadline {self.deadline:.0f}"
        )


def ilp_synthesis(
    graph: TaskGraph,
    deadline: float,
    library: Optional[Dict[str, Processor]] = None,
    comm: CommModel = DEFAULT,
    max_instances_per_type: int = 3,
    max_rounds: int = 6,
    capacity_shrink: float = 0.85,
) -> Optional[SynthesisResult]:
    """Solve for the minimum-cost allocation + mapping; None if
    infeasible within the instance bounds."""
    library = library or default_processor_library()
    tasks = graph.task_names
    types = sorted(library)

    # prune types that cannot run any task within the deadline at all
    capacity_factor = 1.0
    rounds = 0
    evaluations = 0
    while rounds < max_rounds:
        rounds += 1
        solved = _solve_once(
            graph, deadline * capacity_factor, library, types,
            max_instances_per_type,
        )
        if solved is None:
            return None
        allocation, mapping = solved
        schedule = schedule_on(graph, allocation, comm, mapping=mapping)
        evaluations += 1
        if schedule.meets(deadline):
            # let the scheduler refine the pinned mapping (it may only help)
            free = schedule_on(graph, allocation, comm)
            evaluations += 1
            best = free if free.makespan < schedule.makespan else schedule
            return SynthesisResult(
                allocation=allocation,
                schedule=best,
                deadline=deadline,
                algorithm="ilp",
                evaluations=evaluations,
            )
        capacity_factor *= capacity_shrink
    return None


def _solve_once(
    graph: TaskGraph,
    capacity: float,
    library: Dict[str, Processor],
    types: List[str],
    max_instances: int,
) -> Optional[Tuple[Allocation, Dict[str, str]]]:
    tasks = graph.task_names
    n_tasks = len(tasks)

    # instance slots per type
    slots: List[Tuple[str, int]] = []
    for k in types:
        proc = library[k]
        # a type is usable only if every task it might take fits; bound
        # instance count by the work it could possibly absorb
        upper = min(max_instances, n_tasks)
        for j in range(upper):
            slots.append((k, j))
    n_slots = len(slots)

    def xi(t: int, s: int) -> int:
        return t * n_slots + s

    def yi(s: int) -> int:
        return n_tasks * n_slots + s

    n_vars = n_tasks * n_slots + n_slots
    c = np.zeros(n_vars)
    for s, (k, _j) in enumerate(slots):
        c[yi(s)] = library[k].cost

    a_eq = np.zeros((n_tasks, n_vars))
    b_eq = np.ones(n_tasks)
    rows_ub: List[np.ndarray] = []
    rhs_ub: List[float] = []

    times = {
        (t, k): execution_time(graph.task(tasks[t]), library[k])
        for t in range(n_tasks) for k in types
    }
    sizes = [graph.task(name).sw_size for name in tasks]

    for t in range(n_tasks):
        for s, (k, _j) in enumerate(slots):
            if times[(t, k)] <= capacity:
                a_eq[t, xi(t, s)] = 1.0
            # else variable remains unusable: force x=0 via an upper bound
    # unusable assignments: x <= 0
    for t in range(n_tasks):
        for s, (k, _j) in enumerate(slots):
            if times[(t, k)] > capacity:
                row = np.zeros(n_vars)
                row[xi(t, s)] = 1.0
                rows_ub.append(row)
                rhs_ub.append(0.0)

    # capacity + memory per slot
    for s, (k, _j) in enumerate(slots):
        row_t = np.zeros(n_vars)
        row_m = np.zeros(n_vars)
        for t in range(n_tasks):
            row_t[xi(t, s)] = times[(t, k)]
            row_m[xi(t, s)] = sizes[t]
        row_t[yi(s)] = -capacity
        row_m[yi(s)] = -library[k].mem_words
        rows_ub.append(row_t)
        rhs_ub.append(0.0)
        rows_ub.append(row_m)
        rhs_ub.append(0.0)

    # symmetry breaking y[k,j+1] <= y[k,j]
    for s in range(n_slots - 1):
        k, j = slots[s]
        k2, j2 = slots[s + 1]
        if k == k2:
            row = np.zeros(n_vars)
            row[yi(s + 1)] = 1.0
            row[yi(s)] = -1.0
            rows_ub.append(row)
            rhs_ub.append(0.0)

    priority = np.zeros(n_vars)
    for s in range(n_slots):
        priority[yi(s)] = 10.0  # branch on instance-used flags first
    problem = ZeroOneProblem(
        c=c,
        a_ub=np.array(rows_ub),
        b_ub=np.array(rhs_ub),
        a_eq=a_eq,
        b_eq=b_eq,
        branch_priority=priority,
    )
    solution = solve_binary(problem)
    if solution is None:
        return None

    used: List[PeInstance] = []
    slot_to_pe: Dict[int, str] = {}
    for s, (k, j) in enumerate(slots):
        if solution.x[yi(s)] > 0.5:
            pe = PeInstance(f"{k}#{j}", library[k])
            used.append(pe)
            slot_to_pe[s] = pe.name
    mapping: Dict[str, str] = {}
    for t, name in enumerate(tasks):
        for s in range(n_slots):
            if solution.x[xi(t, s)] > 0.5:
                mapping[name] = slot_to_pe[s]
                break
        else:  # pragma: no cover - equality constraint guarantees this
            raise RuntimeError(f"task {name!r} unassigned")
    return Allocation(used), mapping
