"""Sensitivity-driven co-synthesis (Yen & Wolf [9]).

"Sensitivity-Driven Co-Synthesis of Distributed Embedded Systems":
iterative improvement where each candidate architectural modification is
evaluated by its *sensitivity* — the ratio of cost change to performance
change, measured by actually rescheduling the system.

Moves considered each iteration:

* **remove** a PE instance (cost down, makespan up?);
* **downgrade** an instance to the next cheaper type;
* **upgrade** an instance to the next costlier type (when infeasible);
* **add** an instance of any type (when infeasible).

While the deadline is met, the accepted move is the one that saves the
most cost per nanosecond of makespan given up (staying feasible); while
it is missed, the move that buys the most makespan per unit of cost.
Terminates when no move helps; the greedy trajectory is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.estimate.communication import CommModel, DEFAULT
from repro.estimate.software import Processor, default_processor_library
from repro.graph.taskgraph import TaskGraph
from repro.cosynth.multiproc.ilp import SynthesisResult
from repro.cosynth.multiproc.library import Allocation, PeInstance
from repro.cosynth.multiproc.scheduler import schedule_on


def sensitivity_synthesis(
    graph: TaskGraph,
    deadline: float,
    library: Optional[Dict[str, Processor]] = None,
    comm: CommModel = DEFAULT,
    max_iterations: int = 200,
) -> Optional[SynthesisResult]:
    """Run sensitivity-driven iterative improvement.

    Starts from one instance of the fastest type and adds fast PEs until
    feasible (or gives up), then walks cost downhill.  Returns None only
    if no architecture within ``len(graph)`` fastest PEs is feasible.
    """
    library = library or default_processor_library()
    types_by_speed = sorted(
        library.values(),
        key=lambda p: (p.speed_factor / p.clock_ns, -p.cost),
    )
    types_by_cost = sorted(library.values(), key=lambda p: (p.cost, p.name))
    fastest = types_by_speed[-1]
    evaluations = 0

    counts: Dict[str, int] = {fastest.name: 1}

    def build() -> Allocation:
        return Allocation.of(counts, library)

    def measure(alloc: Allocation):
        nonlocal evaluations
        evaluations += 1
        return schedule_on(graph, alloc, comm)

    schedule = measure(build())
    # grow until feasible
    while not schedule.meets(deadline):
        if sum(counts.values()) >= max(len(graph), 1):
            return None
        counts[fastest.name] = counts.get(fastest.name, 0) + 1
        schedule = measure(build())

    best_alloc = build()
    best_schedule = schedule

    for _ in range(max_iterations):
        move = _best_move(
            graph, counts, best_schedule, deadline, library,
            types_by_cost, comm, measure,
        )
        if move is None:
            break
        counts, best_schedule, best_alloc = move

    return SynthesisResult(
        allocation=best_alloc,
        schedule=best_schedule,
        deadline=deadline,
        algorithm="sensitivity",
        evaluations=evaluations,
    )


def _neighbours(
    counts: Dict[str, int],
    types_by_cost: List[Processor],
) -> List[Dict[str, int]]:
    """Candidate architectures one move away."""
    names = [p.name for p in types_by_cost]
    out: List[Dict[str, int]] = []
    for k, n in counts.items():
        if n > 0:
            # remove one
            cand = dict(counts)
            cand[k] -= 1
            if sum(cand.values()) >= 1:
                out.append(cand)
            # change type (both directions)
            idx = names.index(k)
            for other_idx in (idx - 1, idx + 1):
                if 0 <= other_idx < len(names):
                    cand = dict(counts)
                    cand[k] -= 1
                    other = names[other_idx]
                    cand[other] = cand.get(other, 0) + 1
                    out.append(cand)
    # add one of anything
    for name in names:
        cand = dict(counts)
        cand[name] = cand.get(name, 0) + 1
        out.append(cand)
    # normalize (drop zero entries) and dedup
    seen = set()
    unique = []
    for cand in out:
        cand = {k: v for k, v in cand.items() if v > 0}
        key = tuple(sorted(cand.items()))
        if key and key not in seen:
            seen.add(key)
            unique.append(cand)
    return unique


def _best_move(
    graph, counts, current_schedule, deadline, library,
    types_by_cost, comm, measure,
):
    current_cost = Allocation.of(counts, library).cost
    feasible_now = current_schedule.meets(deadline)
    best = None
    for cand_counts in _neighbours(counts, types_by_cost):
        alloc = Allocation.of(cand_counts, library)
        if feasible_now and alloc.cost >= current_cost:
            continue  # only cost-reducing moves once feasible
        schedule = measure(alloc)
        if feasible_now:
            if not schedule.meets(deadline):
                continue
            # sensitivity: cost saved per ns of makespan given up
            saved = current_cost - alloc.cost
            slowdown = max(
                schedule.makespan - current_schedule.makespan, 1e-9
            )
            key = (-saved / slowdown, alloc.cost)
        else:
            speedup = current_schedule.makespan - schedule.makespan
            if speedup <= 0:
                continue
            key = (-speedup / max(alloc.cost - current_cost, 1e-9),
                   alloc.cost)
        if best is None or key < best[0]:
            best = (key, cand_counts, schedule, alloc)
    if best is None:
        return None
    _key, cand_counts, schedule, alloc = best
    return cand_counts, schedule, alloc
