"""Multi-rate periodic task synthesis (the SOS problem form, [12]).

Prakash & Parker's SOS synthesized architectures for *periodic* task
sets: each task recurs at its own rate, and a processing element is
feasible when the work assigned to it fits within its time — the
utilization bound.  This module extends the one-shot synthesizers to
that form:

* each task must carry a ``period`` (its deadline defaults to it);
* a PE's capacity constraint becomes Σ execution/period ≤ ``u_bound``
  (1.0 = the exact bound for independent preemptive EDF scheduling;
  lower values leave headroom for precedence and blocking);
* validation runs the real list scheduler over one *hyperperiod*: every
  task is instantiated once per period it fits in the hyperperiod
  (``task@k`` jobs), precedence edges connect same-iteration jobs, and
  the schedule must finish within the hyperperiod with each job inside
  its own period window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.estimate.communication import CommModel, DEFAULT
from repro.estimate.software import Processor, default_processor_library
from repro.graph.taskgraph import Task, TaskGraph
from repro.cosynth.multiproc.library import (
    Allocation,
    PeInstance,
    execution_time,
)
from repro.cosynth.multiproc.scheduler import MultiprocSchedule, schedule_on


class PeriodicSpecError(ValueError):
    """Raised when the task set is not a valid periodic specification."""


def hyperperiod(graph: TaskGraph) -> float:
    """LCM of all task periods (computed exactly over rationals)."""
    periods = []
    for task in graph:
        if task.period is None or task.period <= 0:
            raise PeriodicSpecError(
                f"task {task.name!r} has no positive period"
            )
        periods.append(Fraction(task.period).limit_denominator(10**6))
    result = periods[0]
    for p in periods[1:]:
        result = _lcm_fraction(result, p)
    return float(result)


def _lcm_fraction(a: Fraction, b: Fraction) -> Fraction:
    num = a.numerator * b.numerator // math.gcd(a.numerator, b.numerator)
    den = math.gcd(a.denominator, b.denominator)
    return Fraction(num, den)


def utilization(task: Task, processor: Processor) -> float:
    """Fraction of one PE this task consumes at its rate."""
    if task.period is None or task.period <= 0:
        raise PeriodicSpecError(f"task {task.name!r} has no period")
    return execution_time(task, processor) / task.period


def unroll_hyperperiod(graph: TaskGraph) -> Tuple[TaskGraph, float]:
    """One job per task release inside the hyperperiod.

    Jobs are named ``task@k``; precedence edges connect jobs of the same
    iteration index *scaled to rates* (an edge a->b with periods Pa, Pb
    links ``a@i`` to ``b@j`` when their windows overlap — the standard
    conservative single-rate-per-edge unrolling).  Each job's deadline
    is the end of its release window.
    """
    H = hyperperiod(graph)
    out = TaskGraph(f"{graph.name}@H")
    jobs: Dict[str, List[str]] = {}
    for task in graph:
        count = int(round(H / task.period))
        names = []
        for k in range(count):
            job = Task(
                name=f"{task.name}@{k}",
                sw_time=task.sw_time,
                hw_time=task.hw_time,
                hw_area=task.hw_area,
                sw_size=task.sw_size,
                parallelism=task.parallelism,
                modifiability=task.modifiability,
                period=task.period,
                deadline=(k + 1) * task.period,
                wcet=dict(task.wcet),
            )
            out.add_task(job)
            names.append(job.name)
        jobs[task.name] = names
        # serialize successive jobs of one task (state dependence)
        for a, b in zip(names, names[1:]):
            out.add_edge(a, b, 0.0)
    for edge in graph.edges:
        src_jobs, dst_jobs = jobs[edge.src], jobs[edge.dst]
        for i, src in enumerate(src_jobs):
            # deliver to the destination job whose window contains the
            # producer's release
            t_release = i * graph.task(edge.src).period
            j = min(
                int(t_release / graph.task(edge.dst).period),
                len(dst_jobs) - 1,
            )
            if not out.has_edge(src, dst_jobs[j]):
                out.add_edge(src, dst_jobs[j], edge.volume)
    out.validate()
    return out, H


@dataclass
class PeriodicResult:
    """Outcome of periodic synthesis."""

    allocation: Allocation
    schedule: MultiprocSchedule
    hyperperiod_ns: float
    utilizations: Dict[str, float]
    algorithm: str = "periodic-ffd"

    @property
    def cost(self) -> float:
        return self.allocation.cost

    @property
    def feasible(self) -> bool:
        """Hyperperiod schedule completes within the hyperperiod and no
        PE exceeds its utilization bound."""
        return (
            self.schedule.makespan <= self.hyperperiod_ns + 1e-9
            and all(u <= 1.0 + 1e-9 for u in self.utilizations.values())
        )

    def summary(self) -> str:
        u_max = max(self.utilizations.values(), default=0.0)
        return (
            f"{self.algorithm}: {self.allocation!r}, "
            f"hyperperiod {self.hyperperiod_ns:.0f} ns, "
            f"makespan {self.schedule.makespan:.0f} ns, "
            f"peak utilization {u_max:.2f}"
        )


def periodic_synthesis(
    graph: TaskGraph,
    library: Optional[Dict[str, Processor]] = None,
    comm: CommModel = DEFAULT,
    u_bound: float = 0.9,
) -> Optional[PeriodicResult]:
    """Minimum-cost allocation for a multi-rate periodic task set.

    First-fit decreasing over *utilization* (the bin dimension that
    matters for periodic work), cheapest feasible type per new bin;
    validated by list-scheduling the hyperperiod unrolling on the chosen
    allocation.  Returns None when no allocation passes validation.
    """
    library = library or default_processor_library()
    if not 0 < u_bound <= 1.0:
        raise PeriodicSpecError("u_bound must be in (0, 1]")
    order = sorted(
        graph.task_names,
        key=lambda n: (-graph.task(n).sw_time / graph.task(n).period
                       if graph.task(n).period else 0.0, n),
    )
    types_by_cost = sorted(library.values(), key=lambda p: (p.cost, p.name))

    for bound in (u_bound, u_bound * 0.75, u_bound * 0.5):
        packed = _pack_by_utilization(
            graph, order, types_by_cost, bound
        )
        if packed is None:
            continue
        allocation, mapping, utils = packed
        unrolled, H = unroll_hyperperiod(graph)
        job_mapping = {
            job: mapping[job.split("@")[0]] for job in unrolled.task_names
        }
        schedule = schedule_on(unrolled, allocation, comm,
                               mapping=job_mapping)
        result = PeriodicResult(
            allocation=allocation,
            schedule=schedule,
            hyperperiod_ns=H,
            utilizations=utils,
        )
        if result.feasible:
            return result
    return None


def _pack_by_utilization(
    graph: TaskGraph,
    order: List[str],
    types_by_cost: List[Processor],
    u_bound: float,
):
    bins: List[Tuple[PeInstance, float]] = []  # (pe, remaining util)
    counters: Dict[str, int] = {}
    mapping: Dict[str, str] = {}
    for name in order:
        task = graph.task(name)
        placed = False
        for i, (pe, left) in enumerate(bins):
            need = utilization(task, pe.processor)
            if need <= left:
                bins[i] = (pe, left - need)
                mapping[name] = pe.name
                placed = True
                break
        if placed:
            continue
        for proc in types_by_cost:
            need = utilization(task, proc)
            if need <= u_bound:
                idx = counters.get(proc.name, 0)
                counters[proc.name] = idx + 1
                pe = PeInstance(f"{proc.name}#{idx}", proc)
                bins.append((pe, u_bound - need))
                mapping[name] = pe.name
                placed = True
                break
        if not placed:
            return None
    allocation = Allocation([pe for pe, _left in bins])
    utils = {
        pe.name: u_bound - left for pe, left in bins
    }
    return allocation, mapping, utils
