"""Processing-element allocations for multiprocessor synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimate.software import Processor, default_processor_library
from repro.graph.taskgraph import Task

#: Throughput of the reference processor (r32): speed 1 at 10 ns clock.
_REFERENCE_THROUGHPUT = 1.0 / 10.0


def execution_time(task: Task, processor: Processor) -> float:
    """Execution time of ``task`` on ``processor`` in ns.

    An explicit per-type WCET (``task.wcet[processor.name]``) wins;
    otherwise the reference ``sw_time`` is scaled by the processor's
    throughput relative to the reference r32.
    """
    if processor.name in task.wcet:
        return task.wcet[processor.name]
    throughput = processor.speed_factor / processor.clock_ns
    return task.sw_time * _REFERENCE_THROUGHPUT / throughput


@dataclass(frozen=True)
class PeInstance:
    """One concrete processing element in an allocation."""

    name: str
    processor: Processor

    @property
    def cost(self) -> float:
        return self.processor.cost


@dataclass
class Allocation:
    """A set of processing-element instances."""

    instances: List[PeInstance] = field(default_factory=list)

    @classmethod
    def of(cls, counts: Dict[str, int],
           library: Optional[Dict[str, Processor]] = None) -> "Allocation":
        """Build from {processor-type: count}."""
        library = library or default_processor_library()
        instances = []
        for type_name in sorted(counts):
            if counts[type_name] < 0:
                raise ValueError(f"negative count for {type_name!r}")
            proc = library[type_name]
            for j in range(counts[type_name]):
                instances.append(PeInstance(f"{type_name}#{j}", proc))
        return cls(instances)

    @property
    def cost(self) -> float:
        """Total processor cost."""
        return sum(pe.cost for pe in self.instances)

    @property
    def counts(self) -> Dict[str, int]:
        """Instance count per processor type."""
        out: Dict[str, int] = {}
        for pe in self.instances:
            out[pe.processor.name] = out.get(pe.processor.name, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.instances)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{k}x{v}" for k, v in sorted(self.counts.items())
        )
        return f"Allocation({parts}; cost={self.cost:.0f})"
