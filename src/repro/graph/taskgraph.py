"""Coarse-grain task graphs.

A :class:`TaskGraph` is a directed acyclic graph of :class:`Task` nodes
connected by data-transfer edges.  It is the input representation for
hardware/software partitioning (Section 3.3 of the paper) and for
heterogeneous multiprocessor co-synthesis (Section 4.2).

Each task carries the per-implementation characterizations that the
paper's Section 3.3 partitioning factors need:

* ``sw_time`` — execution time on the reference instruction-set processor
  (the *software* implementation).
* ``hw_time`` — execution time of a dedicated hardware implementation.
* ``hw_area`` — area cost of that dedicated hardware implementation.
* ``sw_size`` — code size of the software implementation.
* ``parallelism`` — inherent data parallelism (the "nature of computation"
  factor: computations that benefit from a high degree of parallelism are
  better suited to hardware).
* ``modifiability`` — likelihood the function will change after design
  freeze (the "modifiability" factor: favours software).
* ``wcet`` — optional per-processor-type execution times used by the
  multiprocessor synthesizers, keyed by processor-type name.

Edges carry ``volume``: the number of data words transferred, from which
the communication estimators derive transfer and synchronization costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass
class Task:
    """A schedulable unit of system functionality.

    ``sw_time`` must be positive.  ``hw_time`` defaults to ``sw_time / 4``
    (dedicated hardware is typically several times faster than software for
    the DSP-style workloads of the era) when not given explicitly.
    """

    name: str
    sw_time: float = 1.0
    hw_time: Optional[float] = None
    hw_area: float = 10.0
    sw_size: float = 10.0
    parallelism: float = 1.0
    modifiability: float = 0.0
    period: Optional[float] = None
    deadline: Optional[float] = None
    wcet: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sw_time <= 0:
            raise ValueError(f"task {self.name!r}: sw_time must be > 0")
        if self.hw_time is None:
            self.hw_time = self.sw_time / 4.0
        if self.hw_time <= 0:
            raise ValueError(f"task {self.name!r}: hw_time must be > 0")
        if self.hw_area < 0:
            raise ValueError(f"task {self.name!r}: hw_area must be >= 0")
        if not 0.0 <= self.modifiability <= 1.0:
            raise ValueError(
                f"task {self.name!r}: modifiability must be in [0, 1]"
            )
        if self.parallelism < 1.0:
            raise ValueError(f"task {self.name!r}: parallelism must be >= 1")

    def time_on(self, processor_type: str) -> float:
        """Execution time on a named processor type.

        Falls back to ``sw_time`` when the task has no entry for the type.
        """
        return self.wcet.get(processor_type, self.sw_time)

    @property
    def speedup(self) -> float:
        """Hardware speedup factor relative to the software implementation."""
        return self.sw_time / self.hw_time


@dataclass(frozen=True)
class Edge:
    """A directed data-transfer dependency between two tasks."""

    src: str
    dst: str
    volume: float = 1.0

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"edge {self.src}->{self.dst}: volume must be >= 0")


class CycleError(ValueError):
    """Raised when a graph that must be acyclic contains a cycle."""


class TaskGraph:
    """A directed acyclic graph of tasks with weighted data edges.

    The class maintains adjacency in both directions so that scheduling and
    partitioning algorithms get O(1) access to predecessors and successors.
    Insertion order of tasks is preserved and used as the tie-break order
    everywhere, which keeps every algorithm in the framework deterministic.
    """

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._succ: Dict[str, Dict[str, Edge]] = {}
        self._pred: Dict[str, Dict[str, Edge]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Add a task node.  Task names must be unique within the graph."""
        if task.name in self._tasks:
            raise ValueError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = {}
        self._pred[task.name] = {}
        return task

    def add_edge(self, src: str, dst: str, volume: float = 1.0) -> Edge:
        """Add a data edge from ``src`` to ``dst`` carrying ``volume`` words."""
        if src not in self._tasks:
            raise KeyError(f"unknown source task {src!r}")
        if dst not in self._tasks:
            raise KeyError(f"unknown destination task {dst!r}")
        if src == dst:
            raise ValueError(f"self edge on task {src!r}")
        if dst in self._succ[src]:
            raise ValueError(f"duplicate edge {src!r}->{dst!r}")
        edge = Edge(src, dst, volume)
        self._succ[src][dst] = edge
        self._pred[dst][src] = edge
        return edge

    def remove_task(self, name: str) -> None:
        """Remove a task and all edges incident to it."""
        if name not in self._tasks:
            raise KeyError(f"unknown task {name!r}")
        for other in list(self._succ[name]):
            del self._pred[other][name]
        for other in list(self._pred[name]):
            del self._succ[other][name]
        del self._succ[name]
        del self._pred[name]
        del self._tasks[name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        return self._tasks[name]

    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    @property
    def task_names(self) -> List[str]:
        """All task names in insertion order."""
        return list(self._tasks)

    @property
    def edges(self) -> List[Edge]:
        """All edges, grouped by source task in insertion order."""
        return [e for succs in self._succ.values() for e in succs.values()]

    def successors(self, name: str) -> List[str]:
        """Names of the direct successors of ``name``."""
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Names of the direct predecessors of ``name``."""
        return list(self._pred[name])

    def edge(self, src: str, dst: str) -> Edge:
        """The edge from ``src`` to ``dst``; raises ``KeyError`` if absent."""
        return self._succ[src][dst]

    def has_edge(self, src: str, dst: str) -> bool:
        """Whether an edge ``src``->``dst`` exists."""
        return src in self._succ and dst in self._succ[src]

    def set_edge_volume(self, src: str, dst: str, volume: float) -> Edge:
        """Replace the volume of an existing edge (edges are immutable)."""
        if not self.has_edge(src, dst):
            raise KeyError(f"no edge {src!r}->{dst!r}")
        edge = Edge(src, dst, volume)
        self._succ[src][dst] = edge
        self._pred[dst][src] = edge
        return edge

    def out_edges(self, name: str) -> List[Edge]:
        """Edges leaving ``name``."""
        return list(self._succ[name].values())

    def in_edges(self, name: str) -> List[Edge]:
        """Edges entering ``name``."""
        return list(self._pred[name].values())

    def sources(self) -> List[str]:
        """Tasks with no predecessors."""
        return [n for n in self._tasks if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Tasks with no successors."""
        return [n for n in self._tasks if not self._succ[n]]

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Task names in topological order (Kahn's algorithm).

        Raises :class:`CycleError` if the graph contains a cycle.  Ties are
        broken by insertion order, so the result is deterministic.
        """
        indeg = {n: len(self._pred[n]) for n in self._tasks}
        ready = [n for n in self._tasks if indeg[n] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise CycleError(f"task graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        """Check structural invariants (acyclicity)."""
        self.topological_order()

    def critical_path(self, mode: str = "sw") -> Tuple[float, List[str]]:
        """Length and node list of the longest path through the graph.

        ``mode`` selects the node weight: ``"sw"`` uses ``sw_time``,
        ``"hw"`` uses ``hw_time``, ``"min"`` uses the faster of the two.
        Edge volumes are not included; communication-aware length is the
        job of :mod:`repro.partition.evaluate`.
        """
        weight = self._weight_fn(mode)
        finish: Dict[str, float] = {}
        choice: Dict[str, Optional[str]] = {}
        for node in self.topological_order():
            best_pred, best = None, 0.0
            for pred in self._pred[node]:
                if finish[pred] > best:
                    best, best_pred = finish[pred], pred
            finish[node] = best + weight(self._tasks[node])
            choice[node] = best_pred
        if not finish:
            return 0.0, []
        end = max(finish, key=lambda n: (finish[n], n))
        path: List[str] = []
        cur: Optional[str] = end
        while cur is not None:
            path.append(cur)
            cur = choice[cur]
        path.reverse()
        return finish[end], path

    def total_time(self, mode: str = "sw") -> float:
        """Sum of task execution times (a serial, zero-concurrency bound)."""
        weight = self._weight_fn(mode)
        return sum(weight(t) for t in self._tasks.values())

    def total_area(self) -> float:
        """Sum of per-task dedicated hardware areas (no sharing)."""
        return sum(t.hw_area for t in self._tasks.values())

    def levels(self) -> Dict[str, int]:
        """ASAP level (longest hop count from any source) of each task."""
        level: Dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        return level

    def width(self) -> int:
        """Maximum number of tasks on any single level — a crude measure of
        the graph's available concurrency."""
        counts: Dict[int, int] = {}
        for lvl in self.levels().values():
            counts[lvl] = counts.get(lvl, 0) + 1
        return max(counts.values(), default=0)

    def descendants(self, name: str) -> List[str]:
        """All tasks reachable from ``name`` (not including ``name``)."""
        seen: List[str] = []
        stack = list(self._succ[name])
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            seen.append(node)
            stack.extend(self._succ[node])
        return seen

    def ancestors(self, name: str) -> List[str]:
        """All tasks from which ``name`` is reachable."""
        seen: List[str] = []
        stack = list(self._pred[name])
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            seen.append(node)
            stack.extend(self._pred[node])
        return seen

    def cut_volume(self, group: Iterable[str]) -> float:
        """Total edge volume crossing the boundary of ``group``.

        This is the quantity the "communication" partitioning factor
        penalizes: data that must cross the hardware/software boundary.
        """
        inside = set(group)
        total = 0.0
        for edge in self.edges:
            if (edge.src in inside) != (edge.dst in inside):
                total += edge.volume
        return total

    # ------------------------------------------------------------------
    # conversion / copying
    # ------------------------------------------------------------------
    def copy(self) -> "TaskGraph":
        """A deep-enough copy: fresh Task objects, fresh adjacency."""
        clone = TaskGraph(self.name)
        for t in self._tasks.values():
            clone.add_task(
                Task(
                    name=t.name,
                    sw_time=t.sw_time,
                    hw_time=t.hw_time,
                    hw_area=t.hw_area,
                    sw_size=t.sw_size,
                    parallelism=t.parallelism,
                    modifiability=t.modifiability,
                    period=t.period,
                    deadline=t.deadline,
                    wcet=dict(t.wcet),
                )
            )
        for edge in self.edges:
            clone.add_edge(edge.src, edge.dst, edge.volume)
        return clone

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` for interoperability/plotting."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for t in self._tasks.values():
            g.add_node(t.name, task=t)
        for e in self.edges:
            g.add_edge(e.src, e.dst, volume=e.volume)
        return g

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, "
            f"edges={len(self.edges)})"
        )

    @staticmethod
    def _weight_fn(mode: str):
        if mode == "sw":
            return lambda t: t.sw_time
        if mode == "hw":
            return lambda t: t.hw_time
        if mode == "min":
            return lambda t: min(t.sw_time, t.hw_time)
        raise ValueError(f"unknown weight mode {mode!r}")
