"""Fine-grain control/data-flow graphs (CDFGs).

A :class:`CDFG` describes the internals of a single behavior as a DAG of
arithmetic/logic operations.  It is the unit of exchange between:

* high-level synthesis (:mod:`repro.hls`), which schedules and binds the
  operations into a datapath + controller;
* software code generation (:mod:`repro.isa.codegen`), which lowers the
  same operations to R32 instructions;
* the ASIP tools (:mod:`repro.asip`), which mine the graph for custom
  instruction patterns.

Because both the hardware and the software implementation are generated
from the same CDFG, the co-simulation experiments can check them against
each other with :meth:`CDFG.evaluate` as the functional reference — the
"unified understanding of hardware and software functionality" that
Section 3.2 of the paper calls for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

MASK32 = 0xFFFFFFFF


class OpKind(enum.Enum):
    """Operation kinds understood by every backend in the framework."""

    CONST = "const"
    INPUT = "input"
    OUTPUT = "output"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    NEG = "neg"
    LT = "lt"
    LE = "le"
    EQ = "eq"
    NE = "ne"
    GE = "ge"
    GT = "gt"
    MUX = "mux"
    LOAD = "load"
    STORE = "store"

    @property
    def arity(self) -> int:
        """Number of data inputs the op consumes."""
        return _ARITY[self]

    @property
    def is_source(self) -> bool:
        """True for ops that produce a value with no data inputs."""
        return self in (OpKind.CONST, OpKind.INPUT)

    @property
    def is_compute(self) -> bool:
        """True for ops that a functional unit must execute."""
        return not self.is_source and self is not OpKind.OUTPUT


_ARITY = {
    OpKind.CONST: 0,
    OpKind.INPUT: 0,
    OpKind.OUTPUT: 1,
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.MUL: 2,
    OpKind.DIV: 2,
    OpKind.MOD: 2,
    OpKind.SHL: 2,
    OpKind.SHR: 2,
    OpKind.AND: 2,
    OpKind.OR: 2,
    OpKind.XOR: 2,
    OpKind.NOT: 1,
    OpKind.NEG: 1,
    OpKind.LT: 2,
    OpKind.LE: 2,
    OpKind.EQ: 2,
    OpKind.NE: 2,
    OpKind.GE: 2,
    OpKind.GT: 2,
    OpKind.MUX: 3,
    OpKind.LOAD: 1,
    OpKind.STORE: 2,
}

#: Default single-operation delays in nanoseconds, used for quick critical
#: path estimates.  The HLS component library (:mod:`repro.hls.library`)
#: carries its own, finer-grained numbers.
DEFAULT_DELAYS: Dict[OpKind, float] = {
    OpKind.CONST: 0.0,
    OpKind.INPUT: 0.0,
    OpKind.OUTPUT: 0.0,
    OpKind.ADD: 1.0,
    OpKind.SUB: 1.0,
    OpKind.MUL: 3.0,
    OpKind.DIV: 8.0,
    OpKind.MOD: 8.0,
    OpKind.SHL: 0.5,
    OpKind.SHR: 0.5,
    OpKind.AND: 0.5,
    OpKind.OR: 0.5,
    OpKind.XOR: 0.5,
    OpKind.NOT: 0.3,
    OpKind.NEG: 1.0,
    OpKind.LT: 1.0,
    OpKind.LE: 1.0,
    OpKind.EQ: 0.8,
    OpKind.NE: 0.8,
    OpKind.GE: 1.0,
    OpKind.GT: 1.0,
    OpKind.MUX: 0.5,
    OpKind.LOAD: 2.0,
    OpKind.STORE: 2.0,
}


@dataclass
class Op:
    """One operation node.

    ``args`` names the ops whose results feed this op, in positional
    order.  ``value`` is meaningful only for ``CONST`` (the literal) and
    ``INPUT``/``OUTPUT``/``LOAD``/``STORE`` (an optional symbolic tag such
    as a port name or base address).
    """

    name: str
    kind: OpKind
    args: Tuple[str, ...] = ()
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.args) != self.kind.arity:
            raise ValueError(
                f"op {self.name!r}: kind {self.kind.value} takes "
                f"{self.kind.arity} args, got {len(self.args)}"
            )
        if self.kind is OpKind.CONST and self.value is None:
            raise ValueError(f"op {self.name!r}: CONST requires a value")


class CDFG:
    """A dataflow graph of :class:`Op` nodes.

    The builder methods (:meth:`const`, :meth:`inp`, :meth:`add`, ...)
    return the op *name*, so graphs compose naturally::

        g = CDFG("ma")
        a, b, c = g.inp("a"), g.inp("b"), g.inp("c")
        g.out("y", g.add(g.mul(a, b), c))
    """

    def __init__(self, name: str = "cdfg") -> None:
        self.name = name
        self._ops: Dict[str, Op] = {}
        self._uses: Dict[str, List[str]] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_op(
        self,
        kind: OpKind,
        args: Sequence[str] = (),
        name: Optional[str] = None,
        value: Optional[int] = None,
    ) -> str:
        """Add an operation and return its name."""
        if name is None:
            self._counter += 1
            name = f"{kind.value}{self._counter}"
        if name in self._ops:
            raise ValueError(f"duplicate op name {name!r}")
        for arg in args:
            if arg not in self._ops:
                raise KeyError(f"op {name!r}: unknown argument {arg!r}")
        op = Op(name=name, kind=kind, args=tuple(args), value=value)
        self._ops[name] = op
        self._uses[name] = []
        for arg in args:
            self._uses[arg].append(name)
        return name

    # convenience builders ------------------------------------------------
    def const(self, value: int, name: Optional[str] = None) -> str:
        """A literal constant."""
        return self.add_op(OpKind.CONST, (), name, value)

    def inp(self, name: str) -> str:
        """A primary input port."""
        return self.add_op(OpKind.INPUT, (), name)

    def out(self, name: str, src: str) -> str:
        """A primary output port fed by ``src``."""
        return self.add_op(OpKind.OUTPUT, (src,), name)

    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.ADD, (a, b), name)

    def sub(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.SUB, (a, b), name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.MUL, (a, b), name)

    def div(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.DIV, (a, b), name)

    def mod(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.MOD, (a, b), name)

    def shl(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.SHL, (a, b), name)

    def shr(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.SHR, (a, b), name)

    def band(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.AND, (a, b), name)

    def bor(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.OR, (a, b), name)

    def bxor(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.XOR, (a, b), name)

    def bnot(self, a: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.NOT, (a,), name)

    def neg(self, a: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.NEG, (a,), name)

    def lt(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.LT, (a, b), name)

    def eq(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.add_op(OpKind.EQ, (a, b), name)

    def mux(self, cond: str, a: str, b: str, name: Optional[str] = None) -> str:
        """``a if cond != 0 else b``."""
        return self.add_op(OpKind.MUX, (cond, a, b), name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops.values())

    def op(self, name: str) -> Op:
        """Look up an op by name."""
        return self._ops[name]

    @property
    def ops(self) -> List[Op]:
        """All ops in insertion order."""
        return list(self._ops.values())

    def uses(self, name: str) -> List[str]:
        """Ops that consume the result of ``name``."""
        return list(self._uses[name])

    def inputs(self) -> List[Op]:
        """Primary input ops in insertion order."""
        return [o for o in self._ops.values() if o.kind is OpKind.INPUT]

    def outputs(self) -> List[Op]:
        """Primary output ops in insertion order."""
        return [o for o in self._ops.values() if o.kind is OpKind.OUTPUT]

    def compute_ops(self) -> List[Op]:
        """Ops that require a functional unit."""
        return [o for o in self._ops.values() if o.kind.is_compute]

    def op_histogram(self) -> Dict[OpKind, int]:
        """Count of ops by kind — the raw material of 'nature of
        computation' heuristics and ASIP pattern mining."""
        hist: Dict[OpKind, int] = {}
        for o in self._ops.values():
            hist[o.kind] = hist.get(o.kind, 0) + 1
        return hist

    def topological_order(self) -> List[str]:
        """Op names in topological order (insertion order is already
        topological by construction, since args must pre-exist)."""
        return list(self._ops)

    def critical_path_delay(
        self, delays: Optional[Dict[OpKind, float]] = None
    ) -> float:
        """Longest input-to-output combinational delay using ``delays``
        (defaults to :data:`DEFAULT_DELAYS`)."""
        table = delays or DEFAULT_DELAYS
        finish: Dict[str, float] = {}
        for name in self.topological_order():
            op = self._ops[name]
            start = max((finish[a] for a in op.args), default=0.0)
            finish[name] = start + table[op.kind]
        return max(finish.values(), default=0.0)

    def depth(self) -> int:
        """Longest chain of compute ops — the minimum schedule length when
        every op takes one control step."""
        level: Dict[str, int] = {}
        for name in self.topological_order():
            op = self._ops[name]
            base = max((level[a] for a in op.args), default=0)
            level[name] = base + (1 if op.kind.is_compute else 0)
        return max(level.values(), default=0)

    # ------------------------------------------------------------------
    # reference interpreter
    # ------------------------------------------------------------------
    def evaluate(
        self,
        inputs: Dict[str, int],
        memory: Optional[Dict[int, int]] = None,
    ) -> Dict[str, int]:
        """Execute the dataflow graph on concrete 32-bit integer inputs.

        This is the golden functional reference against which both the HLS
        datapath simulation and the generated R32 machine code are checked.
        ``memory`` backs LOAD/STORE ops (address -> word); it is mutated in
        place by STOREs.
        """
        mem = memory if memory is not None else {}
        values: Dict[str, int] = {}
        for name in self.topological_order():
            op = self._ops[name]
            values[name] = self._eval_op(op, values, inputs, mem)
        return {o.name: values[o.args[0]] for o in self.outputs()}

    def _eval_op(
        self,
        op: Op,
        values: Dict[str, int],
        inputs: Dict[str, int],
        mem: Dict[int, int],
    ) -> int:
        a = [values[arg] for arg in op.args]
        k = op.kind
        if k is OpKind.CONST:
            result = op.value
        elif k is OpKind.INPUT:
            if op.name not in inputs:
                raise KeyError(f"missing value for input {op.name!r}")
            result = inputs[op.name]
        elif k is OpKind.OUTPUT:
            result = a[0]
        elif k is OpKind.ADD:
            result = a[0] + a[1]
        elif k is OpKind.SUB:
            result = a[0] - a[1]
        elif k is OpKind.MUL:
            result = a[0] * a[1]
        elif k is OpKind.DIV:
            sa, sb = _signed(a[0]), _signed(a[1])
            if sb == 0:
                raise ZeroDivisionError(f"op {op.name!r}: division by zero")
            quotient = abs(sa) // abs(sb)
            result = quotient if (sa >= 0) == (sb >= 0) else -quotient
        elif k is OpKind.MOD:
            sa, sb = _signed(a[0]), _signed(a[1])
            if sb == 0:
                raise ZeroDivisionError(f"op {op.name!r}: modulo by zero")
            remainder = abs(sa) % abs(sb)
            result = remainder if sa >= 0 else -remainder
        elif k is OpKind.SHL:
            result = a[0] << (a[1] & 31)
        elif k is OpKind.SHR:
            result = (a[0] & MASK32) >> (a[1] & 31)
        elif k is OpKind.AND:
            result = a[0] & a[1]
        elif k is OpKind.OR:
            result = a[0] | a[1]
        elif k is OpKind.XOR:
            result = a[0] ^ a[1]
        elif k is OpKind.NOT:
            result = ~a[0]
        elif k is OpKind.NEG:
            result = -a[0]
        elif k is OpKind.LT:
            result = int(_signed(a[0]) < _signed(a[1]))
        elif k is OpKind.LE:
            result = int(_signed(a[0]) <= _signed(a[1]))
        elif k is OpKind.EQ:
            result = int((a[0] & MASK32) == (a[1] & MASK32))
        elif k is OpKind.NE:
            result = int((a[0] & MASK32) != (a[1] & MASK32))
        elif k is OpKind.GE:
            result = int(_signed(a[0]) >= _signed(a[1]))
        elif k is OpKind.GT:
            result = int(_signed(a[0]) > _signed(a[1]))
        elif k is OpKind.MUX:
            result = a[1] if (a[0] & MASK32) != 0 else a[2]
        elif k is OpKind.LOAD:
            result = mem.get(a[0] & MASK32, 0)
        elif k is OpKind.STORE:
            mem[a[0] & MASK32] = a[1] & MASK32
            result = a[1]
        else:  # pragma: no cover - exhaustive over OpKind
            raise NotImplementedError(k)
        return result & MASK32

    def __repr__(self) -> str:
        return f"CDFG({self.name!r}, ops={len(self._ops)})"


def _signed(x: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x
