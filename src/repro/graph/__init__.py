"""Graph substrate: task graphs, CDFGs, algorithms, generators, kernels.

The graph package is the shared intermediate representation of the whole
framework.  Two granularities are provided, matching the paper's two views
of a specification:

* :class:`repro.graph.taskgraph.TaskGraph` — coarse-grain *tasks* (the
  processes of Figure 1) connected by data edges; consumed by the
  partitioners (:mod:`repro.partition`) and the multiprocessor
  co-synthesizers (:mod:`repro.cosynth.multiproc`).
* :class:`repro.graph.cdfg.CDFG` — fine-grain *operations* inside a single
  behavior; consumed by high-level synthesis (:mod:`repro.hls`), the code
  generator (:mod:`repro.isa.codegen`), and the ASIP tools
  (:mod:`repro.asip`).
"""

from repro.graph.taskgraph import Task, TaskGraph
from repro.graph.cdfg import CDFG, Op, OpKind

__all__ = ["Task", "TaskGraph", "CDFG", "Op", "OpKind"]
