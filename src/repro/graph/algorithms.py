"""Graph algorithms shared by schedulers, partitioners, and synthesizers.

These operate on :class:`repro.graph.taskgraph.TaskGraph` objects and
compute the standard scheduling quantities of the co-synthesis literature:
*t-level* (earliest start), *b-level* (longest path to a sink, inclusive),
priority lists, and communication-aware clusterings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.graph.taskgraph import Task, TaskGraph

WeightFn = Callable[[Task], float]


def sw_weight(task: Task) -> float:
    """Node weight: software execution time."""
    return task.sw_time


def hw_weight(task: Task) -> float:
    """Node weight: hardware execution time."""
    return task.hw_time


def t_levels(
    graph: TaskGraph,
    weight: WeightFn = sw_weight,
    comm: float = 0.0,
) -> Dict[str, float]:
    """Earliest possible start time of each task.

    ``comm`` scales edge volume into a per-edge communication delay that
    is charged on every edge (an upper bound used for priority ordering;
    the evaluators charge communication only on boundary-crossing edges).
    """
    start: Dict[str, float] = {}
    for node in graph.topological_order():
        best = 0.0
        for edge in graph.in_edges(node):
            cand = start[edge.src] + weight(graph.task(edge.src)) + comm * edge.volume
            if cand > best:
                best = cand
        start[node] = best
    return start


def b_levels(
    graph: TaskGraph,
    weight: WeightFn = sw_weight,
    comm: float = 0.0,
) -> Dict[str, float]:
    """Longest path from each task to any sink, including the task itself.

    The classic list-scheduling priority: scheduling tasks in decreasing
    b-level order is optimal for unit tasks on unbounded processors and a
    strong heuristic otherwise.
    """
    blevel: Dict[str, float] = {}
    for node in reversed(graph.topological_order()):
        tail = 0.0
        for edge in graph.out_edges(node):
            cand = blevel[edge.dst] + comm * edge.volume
            if cand > tail:
                tail = cand
        blevel[node] = tail + weight(graph.task(node))
    return blevel


def priority_list(
    graph: TaskGraph,
    weight: WeightFn = sw_weight,
    comm: float = 0.0,
) -> List[str]:
    """Task names sorted by decreasing b-level (ties by insertion order)."""
    levels = b_levels(graph, weight, comm)
    order = {name: i for i, name in enumerate(graph.task_names)}
    return sorted(graph.task_names, key=lambda n: (-levels[n], order[n]))


def slack(graph: TaskGraph, weight: WeightFn = sw_weight) -> Dict[str, float]:
    """Scheduling slack of each task: ALAP start minus ASAP start, against
    the critical-path makespan.  Zero-slack tasks are on a critical path."""
    asap = t_levels(graph, weight)
    blev = b_levels(graph, weight)
    if not asap:
        return {}
    makespan = max(asap[n] + weight(graph.task(n)) for n in graph.task_names)
    return {n: makespan - blev[n] - asap[n] for n in graph.task_names}


def linear_clusters(graph: TaskGraph) -> List[List[str]]:
    """Partition the graph into linear chains (Kim–Browne linear
    clustering): repeatedly peel off the heaviest remaining path.

    Used by the multi-threaded co-processor synthesizer to seed thread
    formation: a linear chain has no internal concurrency, so it never pays
    to split it across controllers.
    """
    remaining: Set[str] = set(graph.task_names)
    clusters: List[List[str]] = []
    while remaining:
        finish: Dict[str, float] = {}
        choice: Dict[str, Optional[str]] = {}
        for node in graph.topological_order():
            if node not in remaining:
                continue
            best_pred, best = None, 0.0
            for pred in graph.predecessors(node):
                if pred in remaining and pred in finish and finish[pred] > best:
                    best, best_pred = finish[pred], pred
            finish[node] = best + graph.task(node).sw_time
            choice[node] = best_pred
        end = max(finish, key=lambda n: (finish[n], n))
        chain: List[str] = []
        cur: Optional[str] = end
        while cur is not None:
            chain.append(cur)
            cur = choice[cur]
        chain.reverse()
        clusters.append(chain)
        remaining.difference_update(chain)
    return clusters


def communication_clusters(
    graph: TaskGraph, n_clusters: int
) -> List[List[str]]:
    """Greedy edge-contraction clustering that localizes communication.

    Repeatedly merges the pair of clusters joined by the highest-volume
    edge until only ``n_clusters`` remain — the "favour partitions that
    localize communication" heuristic of Section 3.3, used as a seed for
    multi-threaded co-processor synthesis.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    cluster_of: Dict[str, int] = {n: i for i, n in enumerate(graph.task_names)}
    members: Dict[int, List[str]] = {
        i: [n] for i, n in enumerate(graph.task_names)
    }
    edges = sorted(
        graph.edges, key=lambda e: (-e.volume, e.src, e.dst)
    )
    for edge in edges:
        if len(members) <= n_clusters:
            break
        a, b = cluster_of[edge.src], cluster_of[edge.dst]
        if a == b:
            continue
        # merge b into a
        for name in members[b]:
            cluster_of[name] = a
        members[a].extend(members[b])
        del members[b]
    # Merge smallest clusters if still above target (disconnected graphs).
    while len(members) > n_clusters:
        keys = sorted(members, key=lambda k: (len(members[k]), k))
        a, b = keys[0], keys[1]
        for name in members[a]:
            cluster_of[name] = b
        members[b].extend(members[a])
        del members[a]
    return [sorted(m, key=graph.task_names.index) for _, m in sorted(members.items())]


def inter_cluster_volume(graph: TaskGraph, clusters: List[List[str]]) -> float:
    """Total edge volume crossing cluster boundaries."""
    where: Dict[str, int] = {}
    for i, cluster in enumerate(clusters):
        for name in cluster:
            where[name] = i
    return sum(
        e.volume for e in graph.edges if where[e.src] != where[e.dst]
    )


def is_convex(graph: TaskGraph, group: Set[str]) -> bool:
    """Whether ``group`` is convex: no path leaves the group and re-enters.

    Convexity is required of a set of operations moved to hardware as a
    single unit (otherwise the hardware would have to call back into
    software mid-execution).
    """
    outside_descendants: Set[str] = set()
    for name in group:
        for succ in graph.successors(name):
            if succ not in group:
                outside_descendants.add(succ)
                outside_descendants.update(graph.descendants(succ))
    return not (outside_descendants & group)


def merge_tasks(
    graph: TaskGraph, group: List[str], merged_name: str
) -> TaskGraph:
    """Return a new graph with ``group`` collapsed into one task.

    Costs are combined conservatively: serial software time, parallel-ish
    hardware time (critical path through the group), summed area.  Edges
    internal to the group disappear; external edges are re-attached with
    volumes summed per neighbour.
    """
    group_set = set(group)
    if not group_set <= set(graph.task_names):
        raise KeyError("group contains unknown tasks")
    if not is_convex(graph, group_set):
        raise ValueError("cannot merge a non-convex group")
    sub_sw = sum(graph.task(n).sw_time for n in group)
    # hardware time: longest chain inside the group
    finish: Dict[str, float] = {}
    for node in graph.topological_order():
        if node not in group_set:
            continue
        start = max(
            (finish[p] for p in graph.predecessors(node) if p in group_set),
            default=0.0,
        )
        finish[node] = start + graph.task(node).hw_time
    sub_hw = max(finish.values(), default=0.0)
    merged = Task(
        name=merged_name,
        sw_time=sub_sw,
        hw_time=max(sub_hw, 1e-9),
        hw_area=sum(graph.task(n).hw_area for n in group),
        sw_size=sum(graph.task(n).sw_size for n in group),
        parallelism=max(graph.task(n).parallelism for n in group),
        modifiability=max(graph.task(n).modifiability for n in group),
    )
    out = TaskGraph(graph.name)
    for t in graph.tasks:
        if t.name not in group_set:
            out.add_task(
                Task(
                    name=t.name,
                    sw_time=t.sw_time,
                    hw_time=t.hw_time,
                    hw_area=t.hw_area,
                    sw_size=t.sw_size,
                    parallelism=t.parallelism,
                    modifiability=t.modifiability,
                    period=t.period,
                    deadline=t.deadline,
                    wcet=dict(t.wcet),
                )
            )
    out.add_task(merged)
    in_vol: Dict[str, float] = {}
    out_vol: Dict[str, float] = {}
    for e in graph.edges:
        s_in, d_in = e.src in group_set, e.dst in group_set
        if s_in and d_in:
            continue
        if s_in:
            out_vol[e.dst] = out_vol.get(e.dst, 0.0) + e.volume
        elif d_in:
            in_vol[e.src] = in_vol.get(e.src, 0.0) + e.volume
        else:
            out.add_edge(e.src, e.dst, e.volume)
    for src, vol in in_vol.items():
        out.add_edge(src, merged_name, vol)
    for dst, vol in out_vol.items():
        out.add_edge(merged_name, dst, vol)
    out.validate()
    return out
