"""Library of classic DSP/embedded kernels as CDFGs and task graphs.

These are the academic workloads of the mid-90s co-design literature:
FIR filters, IIR biquads, the elliptic wave filter (EWF — the canonical
high-level-synthesis benchmark), FFT butterflies, small DCTs, CRC steps,
and a JPEG-style encoder pipeline as a coarse task graph.

Every kernel builder returns a fresh graph, and each CDFG kernel has a
pure-Python reference in :mod:`repro.graph.cdfg` semantics via
``CDFG.evaluate`` so hardware and software backends can be cross-checked.
"""

from __future__ import annotations

from typing import List

from repro.graph.cdfg import CDFG
from repro.graph.taskgraph import Task, TaskGraph


def fir(n_taps: int = 8, coefficients: "List[int]" = None) -> CDFG:
    """An ``n_taps``-tap FIR filter: ``y = sum(c[i] * x[i])``.

    Inputs ``x0..x{n-1}`` are the delay line; coefficients come from
    inputs ``c0..c{n-1}`` by default, or are baked in as constants when
    ``coefficients`` is given (the fixed-filter form ASIP flows mine for
    constant-multiply patterns).  Multiplier-rich and perfectly parallel
    — the archetypal "nature of computation favours hardware" kernel.
    """
    if n_taps < 1:
        raise ValueError("n_taps must be >= 1")
    if coefficients is not None and len(coefficients) != n_taps:
        raise ValueError("need one coefficient per tap")
    g = CDFG(f"fir{n_taps}" + ("k" if coefficients is not None else ""))
    if coefficients is None:
        taps = [g.inp(f"c{i}") for i in range(n_taps)]
    else:
        taps = [g.const(c & 0xFFFFFFFF, f"c{i}")
                for i, c in enumerate(coefficients)]
    products = [
        g.mul(taps[i], g.inp(f"x{i}")) for i in range(n_taps)
    ]
    # balanced adder tree
    while len(products) > 1:
        nxt: List[str] = []
        for i in range(0, len(products) - 1, 2):
            nxt.append(g.add(products[i], products[i + 1]))
        if len(products) % 2:
            nxt.append(products[-1])
        products = nxt
    g.out("y", products[0])
    return g


def iir_biquad() -> CDFG:
    """A direct-form-I IIR biquad section.

    ``y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2`` with the five
    coefficients and four state words as inputs.
    """
    g = CDFG("biquad")
    x = g.inp("x")
    terms = [
        g.mul(g.inp("b0"), x),
        g.mul(g.inp("b1"), g.inp("x1")),
        g.mul(g.inp("b2"), g.inp("x2")),
    ]
    fb = [
        g.mul(g.inp("a1"), g.inp("y1")),
        g.mul(g.inp("a2"), g.inp("y2")),
    ]
    acc = g.add(g.add(terms[0], terms[1]), terms[2])
    acc = g.sub(acc, g.add(fb[0], fb[1]))
    g.out("y", acc)
    return g


def fft_butterfly() -> CDFG:
    """A radix-2 FFT butterfly on integer (fixed-point) data.

    Inputs: ``ar, ai, br, bi`` (two complex points) and ``wr, wi`` (the
    twiddle factor).  Outputs the two complex results ``xr, xi, yr, yi``.
    Four multiplies, six adds — the balanced add/mul mix typical of
    transform codes.
    """
    g = CDFG("butterfly")
    ar, ai = g.inp("ar"), g.inp("ai")
    br, bi = g.inp("br"), g.inp("bi")
    wr, wi = g.inp("wr"), g.inp("wi")
    # t = w * b (complex multiply)
    tr = g.sub(g.mul(wr, br), g.mul(wi, bi))
    ti = g.add(g.mul(wr, bi), g.mul(wi, br))
    g.out("xr", g.add(ar, tr))
    g.out("xi", g.add(ai, ti))
    g.out("yr", g.sub(ar, tr))
    g.out("yi", g.sub(ai, ti))
    return g


def elliptic_wave_filter(constant_coefficients: bool = False) -> CDFG:
    """The fifth-order elliptic wave filter (EWF).

    The canonical scheduling benchmark of the high-level synthesis
    literature.  This rendition reproduces the benchmark's published
    operation mix (26 additions, 8 multiplications) and its long addition
    chains; state inputs ``sv2, sv13, sv18, sv26, sv33, sv38, sv39``,
    sample input ``inp``, coefficients as multiplier inputs ``k0..k7``
    (or baked-in constants with ``constant_coefficients=True``, the form
    the ASIP pattern miner exploits).
    """
    g = CDFG("ewf" + ("k" if constant_coefficients else ""))
    inp = g.inp("inp")
    sv = {i: g.inp(f"sv{i}") for i in (2, 13, 18, 26, 33, 38, 39)}
    if constant_coefficients:
        k = [g.const(3 + 2 * i, f"k{i}") for i in range(8)]
    else:
        k = [g.inp(f"k{i}") for i in range(8)]

    n1 = g.add(inp, sv[2])
    n2 = g.add(n1, sv[13])
    n3 = g.add(sv[26], sv[33])
    m1 = g.mul(n2, k[0])
    n4 = g.add(m1, sv[13])
    m2 = g.mul(n3, k[1])
    n5 = g.add(m2, sv[33])
    n6 = g.add(n4, n5)
    m3 = g.mul(n6, k[2])
    n7 = g.add(m3, n4)
    n8 = g.add(m3, n5)
    n9 = g.add(n7, sv[18])
    m4 = g.mul(n9, k[3])
    n10 = g.add(m4, n7)
    n11 = g.add(n10, n1)
    m5 = g.mul(n11, k[4])
    n12 = g.add(m5, sv[39])
    n13 = g.add(n10, n12)
    n14 = g.add(n8, sv[38])
    m6 = g.mul(n14, k[5])
    n15 = g.add(m6, n8)
    n16 = g.add(n15, n3)
    m7 = g.mul(n16, k[6])
    n17 = g.add(m7, sv[38])
    n18 = g.add(n15, n17)
    m8 = g.mul(n13, k[7])
    n19 = g.add(m8, n12)
    n20 = g.add(n13, n18)
    n21 = g.add(n12, n19)
    n22 = g.add(n17, n18)
    n23 = g.add(n21, n22)
    n24 = g.add(n20, n23)
    n25 = g.add(n16, n9)
    n26 = g.add(n24, n25)

    g.out("sv2_next", n11)
    g.out("sv13_next", n4)
    g.out("sv18_next", n9)
    g.out("sv26_next", n16)
    g.out("sv33_next", n5)
    g.out("sv38_next", n17)
    g.out("sv39_next", n19)
    g.out("y", n26)
    return g


def dct4() -> CDFG:
    """A 4-point DCT-II butterfly network on integer data.

    Inputs ``x0..x3`` plus cosine coefficients ``c1..c3``; outputs
    ``y0..y3``.
    """
    g = CDFG("dct4")
    x = [g.inp(f"x{i}") for i in range(4)]
    c1, c2, c3 = g.inp("c1"), g.inp("c2"), g.inp("c3")
    s03 = g.add(x[0], x[3])
    d03 = g.sub(x[0], x[3])
    s12 = g.add(x[1], x[2])
    d12 = g.sub(x[1], x[2])
    g.out("y0", g.add(s03, s12))
    g.out("y2", g.mul(g.sub(s03, s12), c2))
    g.out("y1", g.add(g.mul(d03, c1), g.mul(d12, c3)))
    g.out("y3", g.sub(g.mul(d03, c3), g.mul(d12, c1)))
    return g


def crc_step() -> CDFG:
    """One byte-step of a CRC-32-like update: table-free shift/xor form.

    Inputs ``crc`` and ``byte``; output ``crc_next``.  Bit-twiddling heavy
    (shift/xor/and) — an archetypal *software-friendly* kernel: cheap on a
    CPU, little to gain from word-parallel hardware.
    """
    g = CDFG("crc_step")
    crc = g.inp("crc")
    byte = g.inp("byte")
    poly = g.const(0xEDB88320, "poly")
    one = g.const(1, "one")
    acc = g.bxor(crc, byte)
    for _ in range(8):
        lsb = g.band(acc, one)
        shifted = g.shr(acc, one)
        acc = g.mux(lsb, g.bxor(shifted, poly), shifted)
    g.out("crc_next", acc)
    return g


def matmul2() -> CDFG:
    """A 2x2 integer matrix multiply (8 multiplies, 4 adds)."""
    g = CDFG("matmul2")
    a = [[g.inp(f"a{i}{j}") for j in range(2)] for i in range(2)]
    b = [[g.inp(f"b{i}{j}") for j in range(2)] for i in range(2)]
    for i in range(2):
        for j in range(2):
            g.out(
                f"c{i}{j}",
                g.add(g.mul(a[i][0], b[0][j]), g.mul(a[i][1], b[1][j])),
            )
    return g


def histogram_bin() -> CDFG:
    """Conditional histogram-bin update: control(mux)-dominated kernel.

    Inputs ``x, lo, hi, count``; output ``count_next`` incremented when
    ``lo <= x < hi``.  Branch-heavy, low arithmetic intensity — affine to
    software.
    """
    g = CDFG("histbin")
    x, lo, hi = g.inp("x"), g.inp("lo"), g.inp("hi")
    count = g.inp("count")
    one = g.const(1, "one")
    # lo <= x  <=>  not (x < lo)
    x_lt_lo = g.lt(x, lo)
    x_lt_hi = g.lt(x, hi)
    in_range = g.band(g.bxor(x_lt_lo, one), x_lt_hi)
    g.out("count_next", g.mux(in_range, g.add(count, one), count))
    return g


def viterbi_acs() -> CDFG:
    """A Viterbi add-compare-select butterfly.

    Two path metrics ``pm0, pm1`` extend by branch metrics ``bm0, bm1``
    (both orderings); each output state keeps the smaller sum and a
    decision bit.  The add→compare and compare→select chains are the
    canonical custom-instruction targets of communications ASIPs.
    """
    g = CDFG("viterbi_acs")
    pm0, pm1 = g.inp("pm0"), g.inp("pm1")
    bm0, bm1 = g.inp("bm0"), g.inp("bm1")
    a0 = g.add(pm0, bm0)
    a1 = g.add(pm1, bm1)
    b0 = g.add(pm0, bm1)
    b1 = g.add(pm1, bm0)
    d0 = g.lt(a1, a0)
    d1 = g.lt(b1, b0)
    g.out("pm_even", g.mux(d0, a1, a0))
    g.out("pm_odd", g.mux(d1, b1, b0))
    g.out("dec_even", d0)
    g.out("dec_odd", d1)
    return g


def lms_update(n_taps: int = 4) -> CDFG:
    """One LMS adaptive-filter coefficient update step.

    ``w[i] += mu_e * x[i]`` for each tap, where ``mu_e`` is the
    pre-scaled error.  Multiply-accumulate-rich like the FIR but with a
    *write-back* structure (outputs per tap), typical of the adaptive
    codecs the era's co-design papers targeted.
    """
    if n_taps < 1:
        raise ValueError("n_taps must be >= 1")
    g = CDFG(f"lms{n_taps}")
    mu_e = g.inp("mu_e")
    for i in range(n_taps):
        w = g.inp(f"w{i}")
        x = g.inp(f"x{i}")
        g.out(f"w{i}_next", g.add(w, g.mul(mu_e, x)))
    return g


ALL_CDFG_KERNELS = {
    "fir8": lambda: fir(8),
    "fir16": lambda: fir(16),
    "biquad": iir_biquad,
    "butterfly": fft_butterfly,
    "ewf": elliptic_wave_filter,
    "dct4": dct4,
    "crc_step": crc_step,
    "matmul2": matmul2,
    "histbin": histogram_bin,
    "viterbi_acs": viterbi_acs,
    "lms4": lambda: lms_update(4),
}


def jpeg_encoder_taskgraph() -> TaskGraph:
    """A JPEG-style still-image encoder as a coarse task graph.

    The motivating multimedia pipeline of the era's co-design intros:
    color conversion -> 2D DCT -> quantization -> zigzag -> RLE -> Huffman.
    Characterizations reflect each stage's nature: the DCT is parallel and
    hardware-friendly; Huffman coding is serial, data-dependent, and
    software-friendly.
    """
    g = TaskGraph("jpeg")
    g.add_task(Task("rgb2ycc", sw_time=24.0, hw_time=4.0, hw_area=90.0,
                    sw_size=30.0, parallelism=8.0, modifiability=0.1))
    g.add_task(Task("dct2d", sw_time=60.0, hw_time=5.0, hw_area=220.0,
                    sw_size=55.0, parallelism=16.0, modifiability=0.05))
    g.add_task(Task("quant", sw_time=14.0, hw_time=2.5, hw_area=60.0,
                    sw_size=18.0, parallelism=8.0, modifiability=0.4))
    g.add_task(Task("zigzag", sw_time=8.0, hw_time=2.0, hw_area=35.0,
                    sw_size=12.0, parallelism=2.0, modifiability=0.1))
    g.add_task(Task("rle", sw_time=18.0, hw_time=9.0, hw_area=70.0,
                    sw_size=25.0, parallelism=1.2, modifiability=0.5))
    g.add_task(Task("huffman", sw_time=30.0, hw_time=20.0, hw_area=150.0,
                    sw_size=60.0, parallelism=1.0, modifiability=0.7))
    g.add_edge("rgb2ycc", "dct2d", 64.0)
    g.add_edge("dct2d", "quant", 64.0)
    g.add_edge("quant", "zigzag", 64.0)
    g.add_edge("zigzag", "rle", 64.0)
    g.add_edge("rle", "huffman", 32.0)
    return g


def modem_taskgraph() -> TaskGraph:
    """A V.32-style modem receive chain as a task graph.

    AGC -> demod (parallel I/Q arms) -> equalizer -> slicer -> descrambler
    -> UART framing.  Mixed shapes: the equalizer is an FIR-like
    hardware-affine block; the descrambler and framing are bit-serial
    software-affine blocks.
    """
    g = TaskGraph("modem")
    g.add_task(Task("agc", sw_time=10.0, hw_time=2.0, hw_area=50.0,
                    sw_size=15.0, parallelism=2.0, modifiability=0.2))
    g.add_task(Task("demod_i", sw_time=22.0, hw_time=3.0, hw_area=110.0,
                    sw_size=28.0, parallelism=8.0, modifiability=0.1))
    g.add_task(Task("demod_q", sw_time=22.0, hw_time=3.0, hw_area=110.0,
                    sw_size=28.0, parallelism=8.0, modifiability=0.1))
    g.add_task(Task("equalizer", sw_time=45.0, hw_time=4.0, hw_area=200.0,
                    sw_size=40.0, parallelism=16.0, modifiability=0.3))
    g.add_task(Task("slicer", sw_time=6.0, hw_time=1.5, hw_area=25.0,
                    sw_size=10.0, parallelism=1.5, modifiability=0.2))
    g.add_task(Task("descrambler", sw_time=12.0, hw_time=8.0, hw_area=55.0,
                    sw_size=20.0, parallelism=1.0, modifiability=0.6))
    g.add_task(Task("framing", sw_time=9.0, hw_time=7.0, hw_area=45.0,
                    sw_size=22.0, parallelism=1.0, modifiability=0.8))
    g.add_edge("agc", "demod_i", 16.0)
    g.add_edge("agc", "demod_q", 16.0)
    g.add_edge("demod_i", "equalizer", 16.0)
    g.add_edge("demod_q", "equalizer", 16.0)
    g.add_edge("equalizer", "slicer", 8.0)
    g.add_edge("slicer", "descrambler", 4.0)
    g.add_edge("descrambler", "framing", 4.0)
    return g


ALL_TASKGRAPH_KERNELS = {
    "jpeg": jpeg_encoder_taskgraph,
    "modem": modem_taskgraph,
}
