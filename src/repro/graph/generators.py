"""Synthetic workload generators.

The paper's example methodologies were evaluated by their authors on
proprietary applications.  Per the substitution policy in DESIGN.md we
generate synthetic task graphs in the style of TGFF (the de-facto random
task-graph generator of the co-synthesis literature) plus structured
shapes (pipelines, fork-joins, trees, series-parallel) that exercise the
concurrency and communication factors directly.

All generators take an explicit ``random.Random`` instance so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.graph.taskgraph import Task, TaskGraph


@dataclass
class TaskCostModel:
    """Ranges from which random task characterizations are drawn.

    ``hw_speedup`` is the factor by which the hardware implementation is
    faster than software; ``hw_area_per_time`` converts software time to
    hardware area (bigger/faster functions cost more gates).
    """

    sw_time: tuple = (2.0, 20.0)
    hw_speedup: tuple = (2.0, 10.0)
    hw_area_per_time: tuple = (3.0, 8.0)
    sw_size_per_time: tuple = (1.0, 3.0)
    parallelism: tuple = (1.0, 8.0)
    modifiability: tuple = (0.0, 0.5)
    edge_volume: tuple = (1.0, 32.0)

    def make_task(self, rng: random.Random, name: str) -> Task:
        """Draw one task from the model."""
        sw = rng.uniform(*self.sw_time)
        speedup = rng.uniform(*self.hw_speedup)
        return Task(
            name=name,
            sw_time=sw,
            hw_time=sw / speedup,
            hw_area=sw * rng.uniform(*self.hw_area_per_time),
            sw_size=sw * rng.uniform(*self.sw_size_per_time),
            parallelism=rng.uniform(*self.parallelism),
            modifiability=rng.uniform(*self.modifiability),
        )

    def draw_volume(self, rng: random.Random) -> float:
        """Draw one edge volume."""
        return rng.uniform(*self.edge_volume)


DEFAULT_COSTS = TaskCostModel()


def random_layered_graph(
    rng: random.Random,
    n_tasks: int = 12,
    width: int = 3,
    extra_edge_prob: float = 0.25,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "tgff",
) -> TaskGraph:
    """TGFF-style layered random DAG.

    Tasks are placed on layers of random width up to ``width``; every task
    (except layer 0) gets one mandatory parent from the previous layer and
    additional edges from earlier layers with probability
    ``extra_edge_prob``.  This is the standard random-graph family used to
    evaluate co-synthesis heuristics.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    graph = TaskGraph(name)
    layers: List[List[str]] = []
    created = 0
    while created < n_tasks:
        layer_size = min(rng.randint(1, width), n_tasks - created)
        layer: List[str] = []
        for _ in range(layer_size):
            task = costs.make_task(rng, f"t{created}")
            graph.add_task(task)
            layer.append(task.name)
            created += 1
        layers.append(layer)
    for level in range(1, len(layers)):
        earlier = [n for lyr in layers[:level] for n in lyr]
        for node in layers[level]:
            parent = rng.choice(layers[level - 1])
            graph.add_edge(parent, node, costs.draw_volume(rng))
            for cand in earlier:
                if cand != parent and rng.random() < extra_edge_prob / level:
                    if not graph.has_edge(cand, node):
                        graph.add_edge(cand, node, costs.draw_volume(rng))
    graph.validate()
    return graph


def pipeline_graph(
    rng: random.Random,
    n_stages: int = 6,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "pipeline",
) -> TaskGraph:
    """A linear chain — zero concurrency, maximal serial dependence."""
    graph = TaskGraph(name)
    prev: Optional[str] = None
    for i in range(n_stages):
        task = costs.make_task(rng, f"s{i}")
        graph.add_task(task)
        if prev is not None:
            graph.add_edge(prev, task.name, costs.draw_volume(rng))
        prev = task.name
    return graph


def fork_join_graph(
    rng: random.Random,
    n_branches: int = 4,
    branch_len: int = 2,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "forkjoin",
) -> TaskGraph:
    """Fork–join: one source fans out to parallel branches that rejoin.

    Maximal exploitable concurrency — the shape on which the "concurrency"
    partitioning factor pays off most.
    """
    graph = TaskGraph(name)
    src = costs.make_task(rng, "fork")
    graph.add_task(src)
    sink = costs.make_task(rng, "join")
    tails: List[str] = []
    for b in range(n_branches):
        prev = src.name
        for s in range(branch_len):
            task = costs.make_task(rng, f"b{b}_{s}")
            graph.add_task(task)
            graph.add_edge(prev, task.name, costs.draw_volume(rng))
            prev = task.name
        tails.append(prev)
    graph.add_task(sink)
    for tail in tails:
        graph.add_edge(tail, sink.name, costs.draw_volume(rng))
    return graph


def tree_graph(
    rng: random.Random,
    depth: int = 3,
    fanout: int = 2,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "tree",
) -> TaskGraph:
    """An out-tree (e.g. a divide phase of divide-and-conquer)."""
    graph = TaskGraph(name)
    root = costs.make_task(rng, "n0")
    graph.add_task(root)
    frontier = [root.name]
    counter = 1
    for _ in range(depth):
        next_frontier: List[str] = []
        for parent in frontier:
            for _ in range(fanout):
                task = costs.make_task(rng, f"n{counter}")
                counter += 1
                graph.add_task(task)
                graph.add_edge(parent, task.name, costs.draw_volume(rng))
                next_frontier.append(task.name)
        frontier = next_frontier
    return graph


def series_parallel_graph(
    rng: random.Random,
    n_expansions: int = 8,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "sp",
) -> TaskGraph:
    """Random series-parallel DAG built by repeated edge expansion.

    Starting from a single edge, each expansion replaces a random edge
    either in series (insert a node) or in parallel (duplicate the edge
    through a new node).  Series-parallel graphs model structured
    (block-structured) programs.
    """
    graph = TaskGraph(name)
    a = costs.make_task(rng, "sp_src")
    b = costs.make_task(rng, "sp_sink")
    graph.add_task(a)
    graph.add_task(b)
    graph.add_edge(a.name, b.name, costs.draw_volume(rng))
    counter = 0
    for _ in range(n_expansions):
        edge = rng.choice(graph.edges)
        node = costs.make_task(rng, f"sp{counter}")
        counter += 1
        graph.add_task(node)
        if rng.random() < 0.5:
            # series: src -> new -> dst replaces src -> dst
            graph.add_edge(edge.src, node.name, costs.draw_volume(rng))
            graph.add_edge(node.name, edge.dst, costs.draw_volume(rng))
        else:
            # parallel: add a second path src -> new -> dst
            graph.add_edge(edge.src, node.name, costs.draw_volume(rng))
            graph.add_edge(node.name, edge.dst, costs.draw_volume(rng))
    graph.validate()
    return graph


def communication_skewed_graph(
    rng: random.Random,
    n_tasks: int = 10,
    hot_pairs: int = 3,
    hot_volume: float = 200.0,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "commskew",
) -> TaskGraph:
    """A layered graph with a few very-high-volume edges.

    Built for the factor-ablation experiment (E11): a partitioner that
    ignores the communication factor will cut the hot edges and pay for
    it in the evaluated latency.
    """
    graph = random_layered_graph(rng, n_tasks=n_tasks, costs=costs, name=name)
    edges = sorted(graph.edges, key=lambda e: (e.src, e.dst))
    rng.shuffle(edges)
    for edge in edges[:hot_pairs]:
        vol = hot_volume * rng.uniform(0.8, 1.2)
        graph.set_edge_volume(edge.src, edge.dst, vol)
    return graph


def parallelism_skewed_graph(
    rng: random.Random,
    n_tasks: int = 10,
    n_parallel: int = 3,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "parskew",
) -> TaskGraph:
    """A layered graph in which a few tasks have very high inherent
    parallelism (and correspondingly large hardware speedups).

    Built for the factor-ablation experiment (E11): the nature-of-
    computation factor should steer exactly these tasks to hardware.
    """
    graph = random_layered_graph(rng, n_tasks=n_tasks, costs=costs, name=name)
    names = list(graph.task_names)
    rng.shuffle(names)
    for nm in names[:n_parallel]:
        task = graph.task(nm)
        task.parallelism = rng.uniform(16.0, 32.0)
        task.hw_time = task.sw_time / task.parallelism
    return graph


def periodic_taskset(
    rng: random.Random,
    n_tasks: int = 12,
    period: float = 100.0,
    utilization: float = 0.6,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: str = "periodic",
) -> TaskGraph:
    """A layered graph annotated with a common period and deadline.

    The multiprocessor co-synthesizers (Section 4.2) minimize processor
    cost subject to completing the whole graph within ``period``.
    Software times are rescaled so the serial utilization matches
    ``utilization`` × period on the reference processor.
    """
    graph = random_layered_graph(rng, n_tasks=n_tasks, costs=costs, name=name)
    total = graph.total_time("sw")
    scale = (utilization * period) / total
    for task in graph:
        task.sw_time *= scale
        task.hw_time *= scale
        task.period = period
        task.deadline = period
        task.wcet = {k: v * scale for k, v in task.wcet.items()}
    return graph


# ----------------------------------------------------------------------
# registries (the sweep engine's uniform entry points)
# ----------------------------------------------------------------------
#
# Every family above has its own natural parameters (stages, branches,
# depth, expansions).  The sweep engine wants one knob — "about this
# many tasks" — so each family gets an adapter that maps ``n_tasks``
# onto its shape parameters.  Shapes that grow in steps (trees,
# fork-joins) land *near* ``n_tasks``, not exactly on it.

def _gen_layered(rng: random.Random, n_tasks: int,
                 costs: TaskCostModel, name: str) -> TaskGraph:
    return random_layered_graph(rng, n_tasks=n_tasks, costs=costs, name=name)


def _gen_pipeline(rng: random.Random, n_tasks: int,
                  costs: TaskCostModel, name: str) -> TaskGraph:
    return pipeline_graph(rng, n_stages=n_tasks, costs=costs, name=name)


def _gen_forkjoin(rng: random.Random, n_tasks: int,
                  costs: TaskCostModel, name: str) -> TaskGraph:
    # fork + join + branches*len interior tasks
    interior = max(2, n_tasks - 2)
    branches = max(2, min(4, interior))
    length = max(1, interior // branches)
    return fork_join_graph(
        rng, n_branches=branches, branch_len=length, costs=costs, name=name
    )


def _gen_tree(rng: random.Random, n_tasks: int,
              costs: TaskCostModel, name: str) -> TaskGraph:
    # a fanout-2 tree of depth d has 2**(d+1) - 1 nodes
    depth = max(1, int(math.log2(max(n_tasks, 3) + 1)) - 1)
    return tree_graph(rng, depth=depth, fanout=2, costs=costs, name=name)


def _gen_series_parallel(rng: random.Random, n_tasks: int,
                         costs: TaskCostModel, name: str) -> TaskGraph:
    return series_parallel_graph(
        rng, n_expansions=max(1, n_tasks - 2), costs=costs, name=name
    )


def _gen_comm_skewed(rng: random.Random, n_tasks: int,
                     costs: TaskCostModel, name: str) -> TaskGraph:
    return communication_skewed_graph(
        rng, n_tasks=n_tasks, costs=costs, name=name
    )


def _gen_par_skewed(rng: random.Random, n_tasks: int,
                    costs: TaskCostModel, name: str) -> TaskGraph:
    return parallelism_skewed_graph(
        rng, n_tasks=n_tasks, costs=costs, name=name
    )


#: Generator families by name, each callable as
#: ``fn(rng, n_tasks, costs, name)``.
GENERATORS: Dict[str, Callable[[random.Random, int, TaskCostModel, str],
                               TaskGraph]] = {
    "layered": _gen_layered,
    "pipeline": _gen_pipeline,
    "forkjoin": _gen_forkjoin,
    "tree": _gen_tree,
    "series_parallel": _gen_series_parallel,
    "comm_skewed": _gen_comm_skewed,
    "par_skewed": _gen_par_skewed,
}


#: Named task-characterization presets the sweep grids draw from.
#: ``default`` is the TGFF-style baseline; the others skew the economics
#: toward one medium or stress the communication factor.
COST_MODELS: Dict[str, TaskCostModel] = {
    "default": DEFAULT_COSTS,
    "hw_friendly": TaskCostModel(
        hw_speedup=(6.0, 16.0), hw_area_per_time=(2.0, 5.0)
    ),
    "sw_friendly": TaskCostModel(
        hw_speedup=(1.5, 4.0), hw_area_per_time=(6.0, 12.0)
    ),
    "comm_heavy": TaskCostModel(edge_volume=(32.0, 256.0)),
}


def generate(
    kind: str,
    rng: random.Random,
    n_tasks: int = 12,
    costs: TaskCostModel = DEFAULT_COSTS,
    name: Optional[str] = None,
) -> TaskGraph:
    """Build a graph of family ``kind`` with about ``n_tasks`` tasks.

    The uniform entry point used by :mod:`repro.sweep`: one call shape
    for every family, so a grid axis can range over family names.
    """
    try:
        builder = GENERATORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown generator {kind!r}; known: {sorted(GENERATORS)}"
        ) from None
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    return builder(rng, n_tasks, costs, name or kind)
