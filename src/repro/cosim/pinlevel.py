"""Pin-level (signal-activity) interface modeling.

The bottom rung of Figure 3, after Becker, Singh & Tell [4]: the
hardware/software interface is "the activity on the pins of a CPU or the
wires of a bus".  Every bus transaction is played out as a synchronous
request/acknowledge handshake on individual address/data/control signals,
clock edge by clock edge.

This is the reference model for timing (contention, wait states, and
handshake overhead all appear naturally) and the most expensive model to
simulate: every attached device wakes on every clock edge, so simulation
cost grows with *cycles*, not with *transfers*.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.cosim.bus import SlaveHandler
from repro.cosim.kernel import Process, Resource, SimulationError, Simulator
from repro.cosim.signals import Clock, Signal, Trace
from repro.cosim.trace import PIN


class PinBus:
    """The physical wires of the system bus plus the master-side grant.

    Signals: ``addr``, ``wdata``, ``rdata`` (word-wide, modeled as ints),
    ``req``, ``wr``, ``ack`` (single-bit).  One clock drives everything.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: Clock,
        name: str = "pinbus",
        trace: Optional[Trace] = None,
    ) -> None:
        self.sim = sim
        self.clk = clock
        self.name = name
        self.addr = Signal(sim, f"{name}.addr", trace=trace)
        self.wdata = Signal(sim, f"{name}.wdata", trace=trace)
        self.rdata = Signal(sim, f"{name}.rdata", trace=trace)
        self.req = Signal(sim, f"{name}.req", trace=trace)
        self.wr = Signal(sim, f"{name}.wr", trace=trace)
        self.ack = Signal(sim, f"{name}.ack", trace=trace)
        self.grant = Resource(sim, f"{name}.grant")
        self.word_transfers = 0


class PinBusMaster:
    """A bus master driving the handshake protocol.

    Per word: win arbitration, present address/data/command on a rising
    clock edge, hold ``req`` until the selected slave raises ``ack``,
    latch read data, drop ``req``, and wait for ``ack`` to fall.  Minimum
    cost is two clock cycles per word plus arbitration.
    """

    def __init__(self, bus: PinBus, name: str = "master") -> None:
        self.bus = bus
        self.name = name
        self.transfers = 0

    def read(self, addr: int) -> Generator:
        """Generator: read one word; returns the value."""
        return (yield from self._word(addr, 0, False))

    def write(self, addr: int, value: int) -> Generator:
        """Generator: write one word."""
        yield from self._word(addr, value, True)

    def _word(self, addr: int, value: int, is_write: bool) -> Generator:
        bus = self.bus
        started = bus.sim.now
        yield from bus.grant.acquire()
        try:
            yield from bus.clk.rising_edge()
            bus.addr.set(addr)
            bus.wr.set(1 if is_write else 0)
            if is_write:
                bus.wdata.set(value)
            bus.req.set(1)
            while not bus.ack.value:
                yield from bus.clk.rising_edge()
            result = bus.rdata.value
            bus.req.set(0)
            while bus.ack.value:
                yield from bus.clk.rising_edge()
            bus.word_transfers += 1
            self.transfers += 1
            if bus.sim.tracer is not None:
                bus.sim.tracer.emit(
                    PIN, f"{bus.name}.{self.name}", addr=addr,
                    write=is_write, duration=bus.sim.now - started,
                )
                bus.sim.tracer.metrics.counter(
                    f"pin.{bus.name}.word_transfers"
                ).inc()
            return result
        finally:
            bus.grant.release()

    def burst_write(self, addr: int, values: List[int]) -> Generator:
        """Generator: write consecutive words (re-arbitrating per word, as
        the simple handshake protocol requires)."""
        for i, v in enumerate(values):
            yield from self.write(addr + i, v)

    def burst_read(self, addr: int, words: int) -> Generator:
        """Generator: read consecutive words; returns the list."""
        out = []
        for i in range(words):
            out.append((yield from self.read(addr + i)))
        return out


class PinBusSlave:
    """An address-decoded slave that serves the handshake protocol.

    ``wait_states`` extra clock cycles elapse between decode and ``ack``,
    modeling slow devices.  The handler has the same signature as the
    transaction-level :data:`repro.cosim.bus.SlaveHandler`, so the *same
    device logic* can be mounted at either abstraction level — the point
    of experiment E3.
    """

    def __init__(
        self,
        bus: PinBus,
        name: str,
        base: int,
        size: int,
        handler: SlaveHandler,
        wait_states: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("slave size must be positive")
        self.bus = bus
        self.name = name
        self.base = base
        self.size = size
        self.handler = handler
        self.wait_states = wait_states
        self.serviced = 0
        self.process: Process = bus.sim.process(
            self._serve(), name=f"{name}.pins"
        )

    def contains(self, addr: int) -> bool:
        """Address decode."""
        return self.base <= addr < self.base + self.size

    def _serve(self) -> Generator:
        bus = self.bus
        while True:
            yield from bus.clk.rising_edge()
            if not (bus.req.value and self.contains(bus.addr.value)):
                continue
            for _ in range(self.wait_states):
                yield from bus.clk.rising_edge()
            offset = bus.addr.value - self.base
            if bus.wr.value:
                self.handler(offset, bus.wdata.value, True)
            else:
                bus.rdata.set(self.handler(offset, 0, False))
            bus.ack.set(1)
            while bus.req.value:
                yield from bus.clk.rising_edge()
            bus.ack.set(0)
            self.serviced += 1


def run_until_complete(
    sim: Simulator,
    processes: List[Process],
    limit: float = 1e9,
) -> float:
    """Step the simulation until every process in ``processes`` has
    terminated (or ``limit`` model time is reached).

    Needed for pin-level models whose free-running clock would otherwise
    keep the event queue non-empty forever.
    """
    while any(p.alive for p in processes):
        if sim.now > limit:
            raise SimulationError(
                f"simulation exceeded time limit {limit}; "
                f"still alive: {[p.name for p in processes if p.alive]}"
            )
        if not sim.step():
            raise SimulationError(
                "deadlock: event queue drained with processes still alive"
            )
    return sim.now
