"""Discrete-event co-simulation at multiple interface abstraction levels.

Section 3.1 of the paper: *"Hardware/software co-simulation requires a
simulation environment that can understand the semantics of both the
hardware and the software components and how actions in one domain affect
the state of the other. The interaction of the hardware and software may
be modeled at a variety of abstraction levels."*

Figure 3's ladder is implemented as four interchangeable interface
models, from most accurate/most expensive to least:

1. :mod:`repro.cosim.pinlevel` — signal activity on the wires of the
   system bus, one simulation event per bus phase (Becker et al. [4]).
2. :mod:`repro.cosim.translevel` — register reads/writes and interrupt
   lines as atomic timed transactions.
3. bus transactions — burst transfers on :class:`repro.cosim.bus.SystemBus`
   occupying the bus for a computed duration.
4. :mod:`repro.cosim.msglevel` — operating-system-style ``send``,
   ``receive`` and ``wait`` on typed channels (Coumeri & Thomas [3]).

All four run on the same generator-based kernel
(:class:`repro.cosim.kernel.Simulator`), so experiment E3 can hold the
application constant and vary only the interface model.

Observability: attach a :class:`repro.cosim.trace.Tracer` to the
simulator (``Simulator(tracer=Tracer())``) to record structured
execution traces — process lifecycle, event fires, resource grants,
signal changes, bus/register/channel activity — with per-process and
per-resource metrics in a :class:`repro.cosim.metrics.MetricsRegistry`,
exportable as JSON, VCD, or a text summary.  Detached (the default),
the kernel pays nothing.
"""

from repro.cosim.kernel import (
    AnyOf,
    Event,
    Interrupt,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.cosim.metrics import Counter, Histogram, MetricsRegistry
from repro.cosim.signals import Clock, Signal, Trace
from repro.cosim.trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "AnyOf",
    "Interrupt",
    "Resource",
    "SimulationError",
    "Signal",
    "Clock",
    "Trace",
    "Tracer",
    "TraceRecord",
    "MetricsRegistry",
    "Counter",
    "Histogram",
]
