"""Signals, clocks, and tracing for hardware-level modeling.

A :class:`Signal` is a piecewise-constant value with a *change
notification* event, the basic modeling element of the pin-level
interface (Figure 3's "signal activity" rung).  A :class:`Clock` is a
self-toggling signal.  A :class:`Trace` records value changes in a
VCD-like in-memory form for assertions and waveform dumps.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.cosim.kernel import Event, Simulator


class Signal:
    """A named, piecewise-constant signal.

    ``set`` changes the value at the current simulation time and fires the
    (re-armed) ``changed`` event.  Processes typically wait with::

        yield sig.changed          # any change
        value = yield sig.changed  # the new value is delivered

    or use the helper generators :meth:`wait_for` / :meth:`rising_edge`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        init: int = 0,
        trace: Optional["Trace"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self._value = init
        self._changed = Event(sim, f"{name}.changed")
        self.trace = trace
        if trace is not None:
            trace.record(sim.now, name, init)

    @property
    def value(self) -> int:
        """Current value."""
        return self._value

    @property
    def changed(self) -> Event:
        """Event that fires on the next value change."""
        return self._changed

    def set(self, value: int) -> None:
        """Drive a new value; fires ``changed`` if the value differs."""
        if value == self._value:
            return
        self._value = value
        if self.trace is not None:
            self.trace.record(self.sim.now, self.name, value)
        if self.sim.tracer is not None:
            self.sim.tracer.on_signal(self.name, value)
        old_event = self._changed
        self._changed = Event(self.sim, f"{self.name}.changed")
        old_event.succeed(value)

    def wait_for(self, value: int) -> Generator:
        """Generator: wait (possibly across many changes) until the signal
        equals ``value``.  Returns immediately if it already does."""
        while self._value != value:
            yield self._changed
        return self._value

    def rising_edge(self) -> Generator:
        """Generator: wait for a transition to a non-zero value."""
        while True:
            new = yield self._changed
            if new:
                return new

    def falling_edge(self) -> Generator:
        """Generator: wait for a transition to zero."""
        while True:
            new = yield self._changed
            if not new:
                return new

    def __repr__(self) -> str:
        return f"Signal({self.name!r}={self._value})"


class Clock(Signal):
    """A free-running two-phase clock signal.

    ``period`` is the full cycle time; the clock is high for the first
    half and low for the second.  The driving process is registered on
    construction and runs until ``until`` (or forever if None — callers
    should then stop the simulation with ``run(until=...)``).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "clk",
        period: float = 10.0,
        until: Optional[float] = None,
        trace: Optional["Trace"] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("clock period must be positive")
        super().__init__(sim, name, init=0, trace=trace)
        self.period = period
        self.cycles = 0
        sim.process(self._drive(until), name=f"{name}.driver")

    def _drive(self, until: Optional[float]) -> Generator:
        half = self.period / 2.0
        while until is None or self.sim.now < until:
            self.set(1)
            self.cycles += 1
            yield self.sim.timeout(half)
            self.set(0)
            yield self.sim.timeout(half)


class Trace:
    """An in-memory waveform: (time, signal-name, value) triples.

    Provides just enough query power for tests and benchmarks: slicing by
    signal, edge counting, and value-at-time reconstruction.
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[float, str, Any]] = []

    def record(self, time: float, name: str, value: Any) -> None:
        """Append one change record."""
        self.entries.append((time, name, value))

    def changes(self, name: str) -> List[Tuple[float, Any]]:
        """All (time, value) changes of one signal, in time order."""
        return [(t, v) for t, n, v in self.entries if n == name]

    def value_at(self, name: str, time: float) -> Any:
        """The signal's value at ``time`` (last change at or before it)."""
        result = None
        for t, v in self.changes(name):
            if t > time:
                break
            result = v
        return result

    def edge_count(self, name: str) -> int:
        """Number of recorded changes of a signal (excluding the initial
        value record)."""
        return max(0, len(self.changes(name)) - 1)

    def signals(self) -> List[str]:
        """All signal names seen, in first-appearance order."""
        seen: Dict[str, None] = {}
        for _t, n, _v in self.entries:
            seen.setdefault(n)
        return list(seen)

    def dump_vcd_like(self) -> str:
        """A human-readable waveform dump (not strict VCD, but stable)."""
        lines = [f"$trace {len(self.entries)} changes$"]
        for t, n, v in self.entries:
            lines.append(f"#{t:.3f} {n} = {v}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
