"""Structured execution tracing for the co-simulation kernel.

The paper's Figure 3 trades *accuracy* against *simulation cost*, but a
single aggregate cost number cannot say where the cost goes.  A
:class:`Tracer` attached to a :class:`repro.cosim.kernel.Simulator`
records the kernel's primitive happenings — process spawn / resume /
finish / interrupt, event fires, resource request / grant / release,
signal changes, bus transfers, register accesses, channel messages —
as timestamped structured records, and feeds per-process and
per-resource metrics into a :class:`repro.cosim.metrics.MetricsRegistry`.

Zero cost when disabled: the kernel's hot paths guard every hook with a
single ``if tracer is not None`` and a detached simulation allocates
nothing tracing-related.

Three exporters cover the common consumers:

* :meth:`Tracer.to_vcd` — a Value Change Dump of signal activity and
  resource (bus-grant) occupancy, for waveform viewers;
* :meth:`Tracer.to_json` — the full record stream plus metrics, for
  scripted analysis;
* :meth:`Tracer.to_trace_events` — Chrome trace-event dicts on model
  time, for the :mod:`repro.obs` Perfetto timeline;
* :meth:`Tracer.summary` — an aligned text table for humans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.cosim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cosim.kernel import Event, Process, Resource, Simulator


# Record kinds.  Plain strings (not an Enum) so records stay cheap to
# create and trivially JSON-serializable.
SPAWN = "spawn"          # process registered
RESUME = "resume"        # process activation (the E3 cost unit)
FINISH = "finish"        # process terminated
INTERRUPT = "interrupt"  # Interrupt delivered to a process
EVENT = "event"          # Event.succeed
RES_WAIT = "res_wait"    # process queued on a busy resource
RES_GRANT = "res_grant"  # resource ownership granted
RES_RELEASE = "res_release"  # resource released (freed or handed off)
SIGNAL = "signal"        # Signal value change
BUS = "bus"              # SystemBus transfer completed
PIN = "pin"              # pin-level word handshake completed
REG = "reg"              # RegisterDevice access completed
IRQ = "irq"              # InterruptLine assert / acknowledge
MSG = "msg"              # Channel send / receive
ACCESS = "access"        # Backplane external access span
TASK = "task"            # task execution span (co-synthesis validation)
COMM = "comm"            # boundary-crossing transfer (partition eval)


@dataclass(slots=True)
class TraceRecord:
    """One timestamped happening: ``(time, kind, name, data)``."""

    time: float
    kind: str
    name: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly form."""
        out: Dict[str, Any] = {"t": self.time, "kind": self.kind,
                               "name": self.name}
        out.update(self.data)
        return out


class Tracer:
    """Collects :class:`TraceRecord` streams and derived metrics.

    ``max_records`` bounds memory for long runs: once reached, further
    records are counted in :attr:`dropped` but not stored (metrics keep
    updating — they are O(1) in space).
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        max_records: Optional[int] = None,
    ) -> None:
        self.records: List[TraceRecord] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_records = max_records
        self.dropped = 0
        self.max_queue_depth = 0
        self._sim: Optional["Simulator"] = None
        self._last_resume: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # core
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Attach to a simulator (done by ``Simulator(tracer=...)``)."""
        self._sim = sim

    def emit(
        self,
        kind: str,
        name: str,
        time: Optional[float] = None,
        **data: Any,
    ) -> None:
        """Record one happening.  ``time`` defaults to the bound
        simulator's current time (0.0 when unbound), so analytic callers
        like :func:`repro.partition.evaluate.evaluate_partition` can pass
        their own timeline explicitly."""
        if time is None:
            time = self._sim.now if self._sim is not None else 0.0
        if (
            self.max_records is not None
            and len(self.records) >= self.max_records
        ):
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, kind, name, data))

    # ------------------------------------------------------------------
    # kernel hooks (called only when a tracer is attached)
    # ------------------------------------------------------------------
    def on_spawn(self, proc: "Process") -> None:
        self.emit(SPAWN, proc.name)

    def on_resume(self, proc: "Process") -> None:
        sim = self._sim
        now = sim.now if sim is not None else 0.0
        depth = len(sim._queue) if sim is not None else 0
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.emit(RESUME, proc.name, time=now, queue=depth)
        m = self.metrics
        m.counter(f"process.{proc.name}.activations").inc()
        last = self._last_resume.get(proc.name)
        if last is not None:
            m.histogram(f"process.{proc.name}.wait_ns").observe(now - last)
        self._last_resume[proc.name] = now

    def on_finish(self, proc: "Process") -> None:
        self.emit(FINISH, proc.name, result=repr(proc.result))

    def on_interrupt(self, proc: "Process", cause: Any) -> None:
        self.emit(INTERRUPT, proc.name, cause=repr(cause))
        self.metrics.counter(f"process.{proc.name}.interrupts").inc()

    def on_event(self, event: "Event", waiters: int) -> None:
        self.emit(EVENT, event.name, waiters=waiters)
        self.metrics.counter("kernel.events_fired").inc()

    def on_resource_wait(self, resource: "Resource", queue: int) -> None:
        self.emit(RES_WAIT, resource.name, queue=queue)

    def on_resource_grant(self, resource: "Resource", waited: float) -> None:
        self.emit(RES_GRANT, resource.name, waited=waited)
        m = self.metrics
        m.counter(f"resource.{resource.name}.acquisitions").inc()
        m.histogram(f"resource.{resource.name}.wait_ns").observe(waited)

    def on_resource_release(
        self, resource: "Resource", handoff: bool
    ) -> None:
        self.emit(RES_RELEASE, resource.name, handoff=handoff)

    def on_signal(self, name: str, value: int) -> None:
        self.emit(SIGNAL, name, value=value)
        self.metrics.counter("kernel.signal_changes").inc()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records_of(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def by_kind(self) -> Dict[str, int]:
        """Record count per kind (the cheapest cost breakdown)."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """The full trace + metrics as a JSON document."""
        doc = {
            "records": [r.to_dict() for r in self.records],
            "dropped": self.dropped,
            "max_queue_depth": self.max_queue_depth,
            "metrics": self.metrics.to_dict(),
        }
        return json.dumps(doc, indent=indent)

    def write_json(self, path: str, indent: Optional[int] = None) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))

    def to_vcd(self, timescale_ps: int = 1000) -> str:
        """A Value Change Dump of signal changes and resource occupancy.

        Signals come from :data:`SIGNAL` records (multi-bit vectors);
        resources appear as 1-bit wires that are high while held, built
        from :data:`RES_GRANT` / :data:`RES_RELEASE` records (a
        handoff release keeps the wire high).  Model time (ns) is
        emitted in ``timescale_ps`` picosecond ticks so fractional-ns
        event times survive the integer timestamps VCD requires.
        """
        changes: Dict[str, List[tuple]] = {}
        widths: Dict[str, int] = {}
        for r in self.records:
            if r.kind == SIGNAL:
                value = int(r.data.get("value", 0))
                changes.setdefault(r.name, []).append((r.time, value))
                widths[r.name] = max(
                    widths.get(r.name, 1), max(value, 0).bit_length() or 1
                )
            elif r.kind == RES_GRANT:
                wire = f"{r.name}.busy"
                # repeated grants (handoffs) keep the wire high
                changes.setdefault(wire, []).append((r.time, 1))
                widths[wire] = 1
            elif r.kind == RES_RELEASE and not r.data.get("handoff"):
                wire = f"{r.name}.busy"
                changes.setdefault(wire, []).append((r.time, 0))
                widths[wire] = 1

        def ident(i: int) -> str:
            # printable VCD identifier codes: '!' (33) .. '~' (126)
            chars = ""
            while True:
                chars += chr(33 + i % 94)
                i //= 94
                if i == 0:
                    return chars

        names = sorted(changes)
        ids = {name: ident(i) for i, name in enumerate(names)}
        lines = [
            "$date repro.cosim.trace $end",
            f"$timescale {timescale_ps} ps $end",
            "$scope module cosim $end",
        ]
        for name in names:
            lines.append(
                f"$var wire {widths[name]} {ids[name]} {name} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        timeline: Dict[int, List[str]] = {}
        for name in names:
            last = None
            for t, value in changes[name]:
                if value == last:
                    continue
                last = value
                tick = int(round(t * 1000 / timescale_ps))
                if widths[name] == 1:
                    entry = f"{value}{ids[name]}"
                else:
                    entry = f"b{value:b} {ids[name]}"
                timeline.setdefault(tick, []).append(entry)
        for tick in sorted(timeline):
            lines.append(f"#{tick}")
            lines.extend(timeline[tick])
        return "\n".join(lines) + "\n"

    def write_vcd(self, path: str, timescale_ps: int = 1000) -> None:
        """Write :meth:`to_vcd` to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_vcd(timescale_ps=timescale_ps))

    def to_trace_events(self, pid: int = 0, tid: int = 0) -> list:
        """The record stream as Chrome trace-event dicts (model time),
        via :func:`repro.obs.perfetto.kernel_trace_events` — point
        records become instants, resource occupancy becomes duration
        spans, so a kernel trace drops straight into the same Perfetto
        timeline as the wall-clock spans."""
        from repro.obs.perfetto import kernel_trace_events
        return kernel_trace_events(self, pid=pid, tid=tid)

    def summary(self) -> str:
        """Human-readable roll-up: record counts per kind, queue-depth
        high-water mark, then the metrics table."""
        lines = [f"trace: {len(self.records)} records"
                 + (f" ({self.dropped} dropped)" if self.dropped else "")]
        kinds = self.by_kind()
        if kinds:
            width = max(len(k) for k in kinds)
            for kind in sorted(kinds):
                lines.append(f"  {kind:<{width}}  {kinds[kind]}")
        lines.append(f"max event-queue depth: {self.max_queue_depth}")
        lines.append(self.metrics.summary_table())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.records)} records, "
            f"{self.dropped} dropped)"
        )
