"""A generator-based discrete-event simulation kernel.

Simulation processes are Python generators that ``yield`` *waitables*:

* :class:`Timeout` — resume after a model-time delay;
* :class:`Event` — resume when the event is succeeded, receiving its value;
* :class:`Process` — resume when another process terminates (join);
* :class:`AnyOf` — resume when the first of several events fires.

The kernel is deliberately small and deterministic: simultaneous events
fire in the order they were scheduled.  It also counts every process
resumption in :attr:`Simulator.activations`, which is the *computational
cost* metric used by experiment E3 to quantify the paper's claim that
pin-level co-simulation "is most accurate ... but is computationally
expensive" while message-level modeling "is very efficient
computationally".
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.cosim.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (bad yields, double-success, etc.)."""


class HangDetected(SimulationError):
    """Raised by a :class:`Watchdog` when the simulation stops making
    progress: model time is stuck while processes keep resuming (a
    zero-delay spin / livelock), or the run exceeds its wall-clock
    budget.  Fault-injection campaigns map this to the *hang* outcome
    class instead of looping forever."""


class Watchdog:
    """Hang-detection policy for :meth:`Simulator.run`.

    ``max_stalled_activations`` bounds how many process resumptions may
    occur *without model time advancing* before the run is declared
    hung — the deterministic detector for zero-delay spin loops, which
    would otherwise run forever.  ``wall_clock_s`` optionally bounds the
    host-time budget of the whole run, checked every ``check_every``
    steps so the hot loop stays cheap.  A process stuck inside a single
    ``step()`` (never yielding at all) is not detectable from within
    the kernel; the watchdog covers everything the event loop can see.
    """

    __slots__ = ("max_stalled_activations", "wall_clock_s", "check_every")

    def __init__(
        self,
        max_stalled_activations: int = 100_000,
        wall_clock_s: Optional[float] = None,
        check_every: int = 1024,
    ) -> None:
        if max_stalled_activations < 1:
            raise ValueError("max_stalled_activations must be >= 1")
        if wall_clock_s is not None and wall_clock_s <= 0:
            raise ValueError("wall_clock_s must be positive")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.max_stalled_activations = max_stalled_activations
        self.wall_clock_s = wall_clock_s
        self.check_every = check_every

    def __repr__(self) -> str:
        return (
            f"Watchdog(max_stalled_activations="
            f"{self.max_stalled_activations}, "
            f"wall_clock_s={self.wall_clock_s})"
        )


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    Models asynchronous preemption (a hardware interrupt hitting polling
    software, a reset).  The interrupted process may catch it and
    continue; the waitable it was blocked on is abandoned.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence carrying an optional value.

    Processes wait on an event by yielding it.  ``succeed(value)`` wakes
    every waiter at the current simulation time.  An event fires at most
    once; reusable notifications re-arm a fresh event (see
    :class:`repro.cosim.signals.Signal`).
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters",
                 "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List[Tuple["Process", int]] = []
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, delivering ``value`` to every waiter."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        if self.sim.tracer is not None:
            self.sim.tracer.on_event(self, len(self._waiters))
        for proc, token in self._waiters:
            self.sim._schedule(0.0, proc, value, token)
        self._waiters.clear()
        for cb in self._callbacks:
            cb(self)
        self._callbacks.clear()
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Call ``fn(event)`` when the event fires (immediately if it
        already has).  Used by :class:`AnyOf` and monitors."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Deregister a pending callback (no-op if absent or already
        fired).  Lets :class:`AnyOf` prune losing branches so abandoned
        events don't accumulate dead closures."""
        try:
            self._callbacks.remove(fn)
        except ValueError:
            pass

    def _add_waiter(self, proc: "Process", token: int) -> None:
        if self.triggered:
            self.sim._schedule(0.0, proc, self.value, token)
        else:
            self._waiters.append((proc, token))

    def __repr__(self) -> str:
        state = "fired" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Timeout:
    """Delay for a fixed amount of model time, optionally with a value."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class AnyOf:
    """Wait for the first of several events; the process receives the
    pair ``(event, value)`` of whichever fired first."""

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")


class Process:
    """A running simulation process wrapping a generator.

    Yield a :class:`Process` from another process to join it; the joiner
    receives the process's return value (``return x`` inside the
    generator).

    Every yield increments an internal *wait token*; scheduled wakeups
    carry the token they were issued under and are dropped if the process
    has since been resumed by something else (e.g. an interrupt).  This
    makes interrupts safe in the presence of pending timeouts.
    """

    __slots__ = ("sim", "gen", "name", "done", "result", "_alive",
                 "_token", "_pending_interrupt")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = Event(sim, f"{name}.done")
        self.result: Any = None
        self._alive = True
        self._token = 0
        self._pending_interrupt: Optional[Interrupt] = None

    @property
    def alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self._alive:
            return
        self._pending_interrupt = Interrupt(cause)
        self.sim._schedule(0.0, self, None, self._token)

    def _resume(self, value: Any, token: int) -> None:
        if token != self._token:
            return  # stale wakeup from an abandoned waitable
        self.sim.activations += 1
        if self.sim.tracer is not None:
            self.sim.tracer.on_resume(self)
        try:
            if self._pending_interrupt is not None:
                exc, self._pending_interrupt = self._pending_interrupt, None
                if self.sim.tracer is not None:
                    self.sim.tracer.on_interrupt(self, exc.cause)
                command = self.gen.throw(exc)
            else:
                command = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # the process chose not to handle its interruption: it dies
            self._finish(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        self._token += 1
        token = self._token
        if isinstance(command, Timeout):
            self.sim._schedule(command.delay, self, command.value, token)
        elif isinstance(command, Event):
            command._add_waiter(self, token)
        elif isinstance(command, Process):
            command.done._add_waiter(self, token)
        elif isinstance(command, AnyOf):
            self._wait_any(command, token)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {command!r}"
            )

    def _wait_any(self, anyof: AnyOf, token: int) -> None:
        fired = {"done": False}

        def on_fire(event: Event) -> None:
            if fired["done"]:
                return
            fired["done"] = True
            self.sim._schedule(0.0, self, (event, event.value), token)
            # prune the losing branches: abandoned events must not keep
            # this closure (and everything it captures) alive for the
            # rest of the run
            for other in anyof.events:
                if other is not event:
                    other.remove_callback(on_fire)

        for event in anyof.events:
            event.add_callback(on_fire)
            if fired["done"]:
                break  # an already-triggered event won the race

    def _finish(self, result: Any) -> None:
        self._alive = False
        self._token += 1  # invalidate any remaining wakeups
        self.result = result
        if self.sim.tracer is not None:
            self.sim.tracer.on_finish(self)
        self.done.succeed(result)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"


class Resource:
    """A FIFO mutual-exclusion resource (bus grant, processor, ...).

    Usage from a process::

        yield from resource.acquire()
        ...critical section...
        resource.release()
    """

    def __init__(self, sim: "Simulator", name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._busy = False
        self._waiters: List[Event] = []
        self.acquisitions = 0
        self.total_wait = 0.0

    @property
    def busy(self) -> bool:
        """Whether the resource is currently held."""
        return self._busy

    def acquire(self) -> Generator:
        """Generator: block until the resource is granted to the caller.

        Interrupt-safe: a waiter interrupted while queued deregisters its
        grant gate (or, if ownership was already handed to it, passes the
        grant on to the next live waiter) before re-raising, so an
        abandoned wait can never leave the resource permanently busy.
        """
        start = self.sim.now
        if self._busy:
            gate = Event(self.sim, f"{self.name}.grant")
            self._waiters.append(gate)
            if self.sim.tracer is not None:
                self.sim.tracer.on_resource_wait(self, len(self._waiters))
            try:
                yield gate
            except Interrupt:
                if gate in self._waiters:
                    # still queued: just give up our place in line
                    self._waiters.remove(gate)
                elif gate.triggered:
                    # release() already handed ownership to us; we are
                    # abandoning it, so pass the grant along (or free)
                    self.release()
                raise
        self._busy = True
        self.acquisitions += 1
        waited = self.sim.now - start
        self.total_wait += waited
        if self.sim.tracer is not None:
            self.sim.tracer.on_resource_grant(self, waited)
        return self

    def release(self) -> None:
        """Release the resource, granting it to the oldest *live* waiter.

        Ownership is handed off directly (the resource never appears free
        in between), so late arrivals cannot barge past queued waiters.
        Gates whose waiting process has died or moved on (a stale wait
        token) are skipped — defense in depth alongside the deregistration
        in :meth:`acquire`.
        """
        if not self._busy:
            raise SimulationError(f"release of idle resource {self.name!r}")
        while self._waiters:
            gate = self._waiters.pop(0)
            if any(
                proc._alive and token == proc._token
                for proc, token in gate._waiters
            ):
                gate.succeed()
                if self.sim.tracer is not None:
                    self.sim.tracer.on_resource_release(self, True)
                return
        self._busy = False
        if self.sim.tracer is not None:
            self.sim.tracer.on_resource_release(self, False)


class Simulator:
    """The discrete-event scheduler.

    * :attr:`now` — current model time (float; the framework's convention
      is nanoseconds).
    * :attr:`activations` — total process resumptions so far; the
      simulation-cost metric of experiment E3.
    * :attr:`tracer` — optional :class:`repro.cosim.trace.Tracer`
      recording structured execution traces and metrics.  ``None`` (the
      default) keeps every hot-path hook behind a single ``if``.
    """

    def __init__(self, tracer: Optional["Tracer"] = None) -> None:
        self.now = 0.0
        self.activations = 0
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self)
        self._queue: List[Tuple[float, int, Process, Any, int]] = []
        # same-time FIFO fast lane: zero-delay schedules (the dominant
        # case at pin level) append here instead of paying heapq churn.
        # Invariant: every entry's time equals `now` — the lane is fully
        # drained (fired or skipped as stale) before time can advance,
        # and step() interleaves the two lanes in global (time, seq)
        # order so determinism is bit-identical to a single heap.
        self._ready: "deque[Tuple[float, int, Process, Any, int]]" = deque()
        self._seq = 0
        self._procs: List[Process] = []

    def attach_tracer(self, tracer: "Tracer") -> "Tracer":
        """Attach (and bind) a tracer after construction; returns it."""
        self.tracer = tracer
        tracer.bind(self)
        return tracer

    # ------------------------------------------------------------------
    # construction API
    # ------------------------------------------------------------------
    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process, starting at the current time."""
        if not name:
            name = f"proc{len(self._procs)}"
        proc = Process(self, gen, name)
        self._procs.append(proc)
        if self.tracer is not None:
            self.tracer.on_spawn(proc)
        self._schedule(0.0, proc, None, proc._token)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh (unfired) event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout waitable (sugar for ``Timeout(delay, value)``)."""
        return Timeout(delay, value)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _schedule(
        self, delay: float, proc: Process, value: Any, token: int
    ) -> None:
        self._seq += 1
        if delay == 0.0:
            self._ready.append((self.now, self._seq, proc, value, token))
        else:
            heapq.heappush(
                self._queue, (self.now + delay, self._seq, proc, value, token)
            )

    def _peek_time(self) -> Optional[float]:
        """Model time of the next scheduled resumption, or ``None`` when
        idle — the single horizon check shared by :meth:`run` and
        :meth:`_run_watched` so the two loops cannot drift."""
        if self._ready:
            return self.now
        if self._queue:
            return self._queue[0][0]
        return None

    def step(self) -> bool:
        """Run one scheduled resumption.  Returns False when idle.

        Pops from whichever lane holds the globally next ``(time, seq)``
        entry: the ready lane always sits at the current time, but a
        heap entry at the same time with a smaller sequence number was
        scheduled earlier and must fire first.
        """
        ready = self._ready
        queue = self._queue
        while ready or queue:
            if ready and (
                not queue
                or queue[0][0] > self.now
                or (queue[0][0] == self.now and queue[0][1] > ready[0][1])
            ):
                time, _seq, proc, value, token = ready.popleft()
            else:
                time, _seq, proc, value, token = heapq.heappop(queue)
                if time < self.now:
                    raise SimulationError("time went backwards")
            if not proc.alive or token != proc._token:
                continue
            self.now = time
            proc._resume(value, token)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        watchdog: Optional[Watchdog] = None,
    ) -> float:
        """Run until the queue drains or model time reaches ``until``.

        Returns the final model time.  ``until`` earlier than ``now`` is
        a no-op: time never moves backwards.  An attached ``watchdog``
        raises :class:`HangDetected` when the run stalls (model time
        stuck while processes keep spinning) or overruns its wall-clock
        budget; ``None`` (the default) keeps the loop exactly as cheap
        as it was without the feature.
        """
        if watchdog is not None:
            return self._run_watched(until, watchdog)
        step = self.step
        if until is None:
            while step():
                pass
            return self.now
        peek = self._peek_time
        while True:
            head = peek()
            if head is None:
                break
            if head > until:
                # advance to the horizon, but never rewind: an `until`
                # in the past must not drag `now` backwards
                self.now = max(self.now, until)
                return self.now
            if not step():
                break
        return self.now

    def _run_watched(self, until: Optional[float], watchdog: Watchdog)\
            -> float:
        """The :meth:`run` loop with stall and wall-clock accounting."""
        last_now = self.now
        stalled = 0
        steps = 0
        deadline = (
            None if watchdog.wall_clock_s is None
            else time.perf_counter() + watchdog.wall_clock_s
        )
        while True:
            head = self._peek_time()
            if head is None:
                break
            if until is not None and head > until:
                self.now = max(self.now, until)
                return self.now
            if not self.step():
                break
            if self.now > last_now:
                last_now = self.now
                stalled = 0
            else:
                stalled += 1
                if stalled >= watchdog.max_stalled_activations:
                    raise HangDetected(
                        f"no model-time progress after {stalled} "
                        f"activations at t={self.now:g}; "
                        f"suspects: {self._stalled_suspects()}"
                    )
            steps += 1
            if deadline is not None and steps % watchdog.check_every == 0:
                if time.perf_counter() > deadline:
                    raise HangDetected(
                        f"wall-clock budget {watchdog.wall_clock_s:g}s "
                        f"exhausted at t={self.now:g} "
                        f"({steps} steps, {stalled} stalled)"
                    )
        return self.now

    def _stalled_suspects(self) -> List[str]:
        """Names of live processes scheduled at the stuck time (the
        most useful attribution the queue can give a hang report)."""
        pending = list(self._ready) + self._queue
        return sorted({
            proc.name
            for when, _seq, proc, _value, token in pending
            if when <= self.now and proc.alive and token == proc._token
        })[:8]

    @property
    def processes(self) -> List[Process]:
        """All processes ever registered."""
        return list(self._procs)

    def __repr__(self) -> str:
        pending = len(self._queue) + len(self._ready)
        return (
            f"Simulator(now={self.now}, pending={pending}, "
            f"activations={self.activations})"
        )
