"""Register/interrupt-level interface modeling.

The "register reads/writes, interrupts" rung of Figure 3: software talks
to hardware through individual device-register accesses with a fixed
access latency, and hardware signals software through interrupt lines.
No bus occupancy or arbitration is modeled — each access is an isolated
timed action — so it is cheaper than the bus-transaction level but blind
to contention.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.cosim.kernel import Event, SimulationError, Simulator
from repro.cosim.trace import IRQ, REG


class InterruptLine:
    """A level-sensitive interrupt request line.

    Hardware asserts it; software (or the CPU model) waits on it and must
    acknowledge to clear.  Statistics count assertions and total pending
    time so experiments can report interrupt latency.
    """

    def __init__(self, sim: Simulator, name: str = "irq") -> None:
        self.sim = sim
        self.name = name
        self._pending = False
        self._event = Event(sim, f"{name}.assert")
        self.assertions = 0
        self._asserted_at = 0.0
        self.total_latency = 0.0

    @property
    def pending(self) -> bool:
        """Whether the line is currently asserted."""
        return self._pending

    def assert_(self) -> None:
        """Raise the interrupt (idempotent while pending)."""
        if self._pending:
            return
        self._pending = True
        self.assertions += 1
        self._asserted_at = self.sim.now
        if self.sim.tracer is not None:
            self.sim.tracer.emit(IRQ, self.name, asserted=True)
        old, self._event = self._event, Event(self.sim, f"{self.name}.assert")
        old.succeed(self.sim.now)

    def acknowledge(self) -> None:
        """Clear the interrupt and account its service latency."""
        if not self._pending:
            raise SimulationError(f"ack of idle interrupt {self.name!r}")
        self._pending = False
        latency = self.sim.now - self._asserted_at
        self.total_latency += latency
        if self.sim.tracer is not None:
            self.sim.tracer.emit(IRQ, self.name, asserted=False)
            self.sim.tracer.metrics.histogram(
                f"irq.{self.name}.latency_ns"
            ).observe(latency)

    def wait(self) -> Generator:
        """Generator: block until the line is (or becomes) asserted."""
        if self._pending:
            return
        yield self._event

    @property
    def mean_latency(self) -> float:
        """Mean assert-to-acknowledge latency over all serviced IRQs."""
        serviced = self.assertions - (1 if self._pending else 0)
        return self.total_latency / serviced if serviced else 0.0


class RegisterDevice:
    """Base class for a device modeled as a register file.

    Subclasses override :meth:`on_read` / :meth:`on_write`.  Accesses
    cost ``access_time`` each and are *not* arbitrated — the simplification
    that makes this level cheap and optimistic under contention.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_registers: int,
        access_time: float = 2.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.regs: List[int] = [0] * n_registers
        self.access_time = access_time
        self.reads = 0
        self.writes = 0

    def on_read(self, index: int) -> int:
        """Hook: value returned for a read of register ``index``."""
        return self.regs[index]

    def on_write(self, index: int, value: int) -> None:
        """Hook: effect of writing ``value`` to register ``index``."""
        self.regs[index] = value

    def read(self, index: int) -> Generator:
        """Generator: timed read of one register."""
        self._check(index)
        yield self.sim.timeout(self.access_time)
        self.reads += 1
        if self.sim.tracer is not None:
            self._trace_access(index, False)
        return self.on_read(index)

    def write(self, index: int, value: int) -> Generator:
        """Generator: timed write of one register."""
        self._check(index)
        yield self.sim.timeout(self.access_time)
        self.writes += 1
        if self.sim.tracer is not None:
            self._trace_access(index, True)
        self.on_write(index, value)

    def _trace_access(self, index: int, is_write: bool) -> None:
        self.sim.tracer.emit(REG, self.name, index=index, write=is_write)
        self.sim.tracer.metrics.counter(
            f"device.{self.name}.accesses"
        ).inc()

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self.regs):
            raise SimulationError(
                f"device {self.name!r}: register index {index} out of range"
            )

    @property
    def accesses(self) -> int:
        """Total register accesses."""
        return self.reads + self.writes


class FifoDevice(RegisterDevice):
    """A device exposing a producer/consumer FIFO through registers.

    Register map: 0 = DATA (write pushes, read pops), 1 = STATUS
    (bit 0 = not-empty, bit 1 = full), 2 = LEVEL (occupancy).
    Asserts ``irq`` when data becomes available.
    """

    DATA, STATUS, LEVEL = 0, 1, 2

    def __init__(
        self,
        sim: Simulator,
        name: str = "fifo",
        depth: int = 16,
        access_time: float = 2.0,
        irq: Optional[InterruptLine] = None,
    ) -> None:
        super().__init__(sim, name, 3, access_time)
        self.depth = depth
        self.fifo: List[int] = []
        self.irq = irq
        self.overruns = 0

    def push(self, value: int) -> bool:
        """Hardware-side push; returns False (and counts an overrun) when
        the FIFO is full."""
        if len(self.fifo) >= self.depth:
            self.overruns += 1
            return False
        self.fifo.append(value)
        if self.irq is not None and not self.irq.pending:
            self.irq.assert_()
        return True

    def on_read(self, index: int) -> int:
        if index == self.DATA:
            if not self.fifo:
                return 0
            value = self.fifo.pop(0)
            if not self.fifo and self.irq is not None and self.irq.pending:
                self.irq.acknowledge()
            return value
        if index == self.STATUS:
            return (1 if self.fifo else 0) | (
                2 if len(self.fifo) >= self.depth else 0
            )
        return len(self.fifo)

    def on_write(self, index: int, value: int) -> None:
        if index == self.DATA:
            self.push(value)
        else:
            raise SimulationError(
                f"device {self.name!r}: register {index} is read-only"
            )
