"""The co-simulation backplane: coupling the R32 CPU to hardware models.

Section 3.1: a co-simulation environment must "understand the semantics
of both the hardware and the software components and how actions in one
domain affect the state of the other".  The backplane is that coupling:

* the CPU runs as a simulation process, advancing model time by its
  cycle count (software semantics);
* loads/stores to *mounted* address windows are routed to an interface
  adapter that plays them out at a chosen abstraction level (hardware
  semantics): pin-level handshake, arbitrated bus transaction, register
  access, or message channel;
* hardware models raise CPU interrupts through :meth:`Backplane.irq`.

Because the adapter is chosen per mount, experiment E3 can hold the
software and the device logic constant and measure only the effect of
the interface abstraction level — reproducing Figure 3's
accuracy/cost ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Process, SimulationError, Simulator
from repro.cosim.trace import ACCESS
from repro.cosim.msglevel import Channel
from repro.cosim.pinlevel import PinBusMaster
from repro.cosim.translevel import RegisterDevice
from repro.isa.cpu import Cpu, ExternalAccess


class InterfaceAdapter:
    """Protocol for interface models mounted on the backplane.

    ``access`` is a generator (it may consume model time) returning the
    read value (ignored for writes).
    """

    def access(self, offset: int, value: int, is_write: bool) -> Generator:
        raise NotImplementedError


class PinLevelAdapter(InterfaceAdapter):
    """Figure 3, bottom rung: every access is a full pin-level handshake
    on the wires of the bus."""

    def __init__(self, master: PinBusMaster, base: int) -> None:
        self.master = master
        self.base = base

    def access(self, offset: int, value: int, is_write: bool) -> Generator:
        if is_write:
            yield from self.master.write(self.base + offset, value)
            return 0
        return (yield from self.master.read(self.base + offset))


class TransactionAdapter(InterfaceAdapter):
    """Bus-transaction rung: accesses become arbitrated timed transfers
    on a :class:`repro.cosim.bus.SystemBus`."""

    def __init__(self, bus: SystemBus, base: int) -> None:
        self.bus = bus
        self.base = base

    def access(self, offset: int, value: int, is_write: bool) -> Generator:
        if is_write:
            yield from self.bus.write(self.base + offset, [value])
            return 0
        data = yield from self.bus.read(self.base + offset, 1)
        return data[0]


class RegisterAdapter(InterfaceAdapter):
    """Register/interrupt rung: accesses are individual device-register
    reads/writes with a fixed latency, no arbitration."""

    def __init__(self, device: RegisterDevice) -> None:
        self.device = device

    def access(self, offset: int, value: int, is_write: bool) -> Generator:
        if is_write:
            yield from self.device.write(offset, value)
            return 0
        return (yield from self.device.read(offset))


class MessageAdapter(InterfaceAdapter):
    """OS rung: a write *sends* the word on the outbound channel, a read
    *receives* from the inbound channel (blocking), regardless of offset.

    This is the send/receive/wait modeling of [3]: all physical detail of
    the transport is abstracted into the channels' latency model.
    """

    def __init__(
        self,
        to_hw: Optional[Channel] = None,
        from_hw: Optional[Channel] = None,
    ) -> None:
        if to_hw is None and from_hw is None:
            raise ValueError("MessageAdapter needs at least one channel")
        self.to_hw = to_hw
        self.from_hw = from_hw

    def access(self, offset: int, value: int, is_write: bool) -> Generator:
        if is_write:
            if self.to_hw is None:
                raise SimulationError("write to receive-only message window")
            yield from self.to_hw.send(value)
            return 0
        if self.from_hw is None:
            raise SimulationError("read from send-only message window")
        return (yield from self.from_hw.receive())


@dataclass
class _Mount:
    base: int
    size: int
    adapter: InterfaceAdapter


class Backplane:
    """Runs a :class:`repro.isa.cpu.Cpu` inside a :class:`Simulator`.

    ``clock_period`` converts CPU cycles to model time.
    ``batch_instructions`` controls how many purely-internal instructions
    execute per simulation event: 1 gives instruction-granular timing,
    larger batches speed up long software stretches (interrupts are then
    recognized at batch boundaries, as in real instruction-set
    co-simulators).
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: Cpu,
        clock_period: float = 10.0,
        batch_instructions: int = 1,
    ) -> None:
        if batch_instructions < 1:
            raise ValueError("batch_instructions must be >= 1")
        self.sim = sim
        self.cpu = cpu
        self.clock_period = clock_period
        self.batch_instructions = batch_instructions
        self._mounts: List[_Mount] = []
        self.external_accesses = 0
        self.stall_time = 0.0
        self.process: Optional[Process] = None

    # ------------------------------------------------------------------
    def mount(self, base: int, size: int, adapter: InterfaceAdapter) -> None:
        """Map [base, base+size) to ``adapter`` and mark the window
        external in the CPU's memory."""
        self.cpu.memory.add_region(
            f"mount@{base:#x}", base, size, external=True
        )
        self._mounts.append(_Mount(base, size, adapter))

    def irq(self) -> None:
        """Raise the CPU interrupt line (for device models)."""
        self.cpu.raise_irq()

    def start(self, name: str = "cpu") -> Process:
        """Register the CPU driver process; returns it (join to wait for
        ``halt``)."""
        if self.process is not None:
            raise SimulationError("backplane already started")
        self.process = self.sim.process(self._drive(), name=name)
        return self.process

    # ------------------------------------------------------------------
    def _find(self, addr: int) -> _Mount:
        for mount in self._mounts:
            if mount.base <= addr < mount.base + mount.size:
                return mount
        raise SimulationError(f"no adapter mounted at {addr:#x}")

    def _drive(self) -> Generator:
        # Each run_block() call retires a run of internal instructions in
        # one Python frame (fast path; falls back to step() semantics
        # when observers are armed).  `steps` counts step()-equivalents
        # — retired instructions, taken IRQs, and the deferred access —
        # so the batch budget, and therefore the exact sequence of
        # timeouts and adapter activations, is identical to the old
        # one-step()-per-instruction loop at any batch_instructions.
        cpu = self.cpu
        period = self.clock_period
        timeout = self.sim.timeout
        while not cpu.halted:
            budget = self.batch_instructions
            while budget:
                steps, cycles, access = cpu.run_block(budget)
                budget -= steps
                if access is None:
                    # budget exhausted or halt retired: flush the batch
                    if cycles:
                        yield timeout(cycles * period)
                    break
                if cycles:
                    yield timeout(cycles * period)
                yield from self._service(access)
                if cpu.halted:
                    break
        return cpu.cycle_count

    def _service(self, access: ExternalAccess) -> Generator:
        mount = self._find(access.addr)
        self.external_accesses += 1
        started = self.sim.now
        value = yield from mount.adapter.access(
            access.addr - mount.base, access.value, access.is_write
        )
        elapsed = self.sim.now - started
        self.stall_time += elapsed
        if self.sim.tracer is not None:
            adapter = type(mount.adapter).__name__
            self.sim.tracer.emit(
                ACCESS, f"mount@{mount.base:#x}", addr=access.addr,
                write=access.is_write, adapter=adapter, stall=elapsed,
            )
            self.sim.tracer.metrics.counter(
                f"backplane.{adapter}.accesses"
            ).inc()
            self.sim.tracer.metrics.histogram(
                f"backplane.{adapter}.stall_ns"
            ).observe(elapsed)
        stall_cycles = int(round(elapsed / self.clock_period))
        self.cpu.complete_access(
            read_value=(value or 0), extra_cycles=stall_cycles
        )
