"""Metrics for the co-simulation kernel: counters, histograms, registry.

The kernel's single scalar (:attr:`Simulator.activations`) answers "how
much did this simulation cost?" but not "*where* did the cost go?".
The :class:`MetricsRegistry` answers the second question: per-process
activation counts, per-process and per-resource wait-time histograms,
per-bus transfer counters — the measurement substrate every performance
experiment (E3's abstraction ladder first among them) builds on.

All metrics are plain Python objects with O(1) updates; nothing here
touches the kernel unless a :class:`repro.cosim.trace.Tracer` is
attached, so a tracerless simulation pays nothing.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Histogram:
    """A fixed-bucket histogram of non-negative samples.

    Default buckets are powers of two in model-time units (ns by the
    framework's convention), which spans everything from single clock
    phases to whole-simulation latencies in ~30 buckets.  Exact count,
    sum, min, max, and mean are tracked alongside the buckets.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> None:
        self.name = name
        if bounds is None:
            bounds = [2.0 ** i for i in range(31)]  # 1 ns .. ~1 s
        self.bounds: List[float] = sorted(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.buckets[lo] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (bucket upper bound containing it)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.max)
                return self.max
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (non-empty buckets only)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": {
                (f"le_{self.bounds[i]:g}" if i < len(self.bounds) else "inf"):
                    n
                for i, n in enumerate(self.buckets) if n
            },
        }

    def snapshot(self) -> Dict[str, Any]:
        """Lossless state dump (full bucket array + bounds), the form
        :meth:`merge_snapshot` can fold back in.  Unlike :meth:`to_dict`
        this keeps every bucket, so worker-process deltas can be shipped
        over a pipe and re-aggregated exactly."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Bounds must match — histograms with different bucketing cannot
        be merged without losing information, so that is an error.
        """
        if list(snap["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge snapshot with "
                f"different bounds"
            )
        for i, n in enumerate(snap["buckets"]):
            self.buckets[i] += n
        self.count += snap["count"]
        self.total += snap["total"]
        if snap["count"]:
            if snap["min"] < self.min:
                self.min = snap["min"]
            if snap["max"] > self.max:
                self.max = snap["max"]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.3g})"
        )


class MetricsRegistry:
    """Get-or-create store of named counters and histograms.

    Naming convention is dotted paths, e.g. ``process.cpu.activations``
    or ``resource.sysbus.grant.wait_ns``, so the summary table groups
    naturally and exports stay greppable.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    @property
    def counters(self) -> Dict[str, Counter]:
        """All counters by name."""
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """All histograms by name."""
        return dict(self._histograms)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of every metric."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self._histograms.items())
            },
        }

    def snapshot(self) -> Dict[str, Any]:
        """A lossless, JSON-serializable dump of every metric.

        Unlike :meth:`to_dict` (a reporting form), a snapshot carries
        full histogram state and round-trips through
        :meth:`merge`: take one in a worker process, ship it back over
        the pool's result pipe, and fold it into the parent registry so
        counters stay truthful at any worker count.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (typically a worker's delta) into
        this registry.  Counters add; histograms merge bucket-wise
        (creating them with the snapshot's bounds on first sight)."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, hsnap in snap.get("histograms", {}).items():
            h = self._histograms.get(name)
            if h is None:
                h = self.histogram(name, bounds=hsnap["bounds"])
            h.merge_snapshot(hsnap)

    def summary_table(self) -> str:
        """An aligned, human-readable table of all metrics."""
        lines: List[str] = []
        if self._counters:
            width = max(len(n) for n in self._counters)
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(
                    f"  {name:<{width}}  {self._counters[name].value}"
                )
        if self._histograms:
            width = max(len(n) for n in self._histograms)
            lines.append("histograms:")
            header = (
                f"  {'name':<{width}}  {'count':>7} {'mean':>10} "
                f"{'min':>10} {'max':>10} {'p90':>10}"
            )
            lines.append(header)
            for name in sorted(self._histograms):
                h = self._histograms[name]
                lines.append(
                    f"  {name:<{width}}  {h.count:>7} {h.mean:>10.2f} "
                    f"{(h.min if h.count else 0.0):>10.2f} "
                    f"{(h.max if h.count else 0.0):>10.2f} "
                    f"{h.quantile(0.9):>10.2f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._histograms)} histograms)"
        )
