"""Bus-transaction-level modeling of the system bus.

The second rung of Figure 3: hardware/software interaction is modeled as
*bus transactions* — timed, arbitrated burst transfers that occupy the
shared bus — without simulating individual wire activity.  One transfer
costs O(1) simulation events but reproduces bus *occupancy* and
*contention*, so performance estimates are far better than the message
level while remaining much cheaper than the pin level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple

from repro.cosim.kernel import Resource, SimulationError, Simulator
from repro.cosim.trace import BUS

#: A slave handler: (offset, value, is_write) -> read value (ignored for
#: writes).  Handlers execute in zero model time; devices needing time
#: model it internally with wait states via ``extra_cycles``.
SlaveHandler = Callable[[int, int, bool], int]


@dataclass
class BusSlave:
    """An address-mapped slave device on the bus."""

    name: str
    base: int
    size: int
    handler: SlaveHandler
    extra_cycles: int = 0

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this slave's window."""
        return self.base <= addr < self.base + self.size


@dataclass
class BusStats:
    """Aggregate bus statistics for utilization/contention analysis."""

    transfers: int = 0
    words: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Fraction of elapsed time the bus was occupied."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class SystemBus:
    """A single shared system bus with FIFO arbitration.

    Timing model (all in model-time units):

    * ``arbitration_time`` — fixed cost to win the bus when idle;
    * ``setup_time`` — per-transaction address/command phase;
    * ``word_time`` — per-word data phase;
    * per-slave ``extra_cycles`` multiply ``word_time`` as wait states.

    This is exactly the level at which the paper's "communication"
    partitioning factor is evaluated: the synchronization and transfer
    overhead of crossing the hardware/software boundary.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "sysbus",
        arbitration_time: float = 1.0,
        setup_time: float = 1.0,
        word_time: float = 2.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.arbitration_time = arbitration_time
        self.setup_time = setup_time
        self.word_time = word_time
        self._grant = Resource(sim, f"{name}.grant")
        self._slaves: List[BusSlave] = []
        self.stats = BusStats()

    # ------------------------------------------------------------------
    def attach_slave(
        self,
        name: str,
        base: int,
        size: int,
        handler: SlaveHandler,
        extra_cycles: int = 0,
    ) -> BusSlave:
        """Map a slave device at [base, base+size)."""
        if size <= 0:
            raise ValueError("slave size must be positive")
        for s in self._slaves:
            if s.base < base + size and base < s.base + s.size:
                raise ValueError(
                    f"slave {name!r} overlaps {s.name!r} "
                    f"([{s.base:#x}, {s.base + s.size:#x}))"
                )
        slave = BusSlave(name, base, size, handler, extra_cycles)
        self._slaves.append(slave)
        return slave

    def decode(self, addr: int) -> BusSlave:
        """Find the slave mapped at ``addr``."""
        for s in self._slaves:
            if s.contains(addr):
                return s
        raise SimulationError(f"bus {self.name!r}: no slave at {addr:#x}")

    def transfer_time(self, words: int, extra_cycles: int = 0) -> float:
        """Duration of a granted transfer of ``words`` words."""
        return self.setup_time + words * self.word_time * (1 + extra_cycles)

    # ------------------------------------------------------------------
    def write(self, addr: int, values: List[int]) -> Generator:
        """Generator: burst-write ``values`` starting at ``addr``."""
        yield from self._transfer(addr, values, True)

    def read(self, addr: int, words: int = 1) -> Generator:
        """Generator: burst-read ``words`` words starting at ``addr``;
        returns the list of values."""
        return (yield from self._transfer(addr, [0] * words, False))

    def _transfer(
        self, addr: int, values: List[int], is_write: bool
    ) -> Generator:
        if not values:
            raise SimulationError("zero-length bus transfer")
        slave = self.decode(addr)
        end = addr + len(values) - 1
        if not slave.contains(end):
            raise SimulationError(
                f"burst [{addr:#x}, {end:#x}] crosses out of {slave.name!r}"
            )
        request_time = self.sim.now
        yield from self._grant.acquire()
        waited = self.sim.now - request_time
        self.stats.wait_time += waited
        try:
            yield self.sim.timeout(self.arbitration_time)
            duration = self.transfer_time(len(values), slave.extra_cycles)
            yield self.sim.timeout(duration)
            self.stats.busy_time += self.arbitration_time + duration
            self.stats.transfers += 1
            self.stats.words += len(values)
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    BUS, self.name, addr=addr, words=len(values),
                    write=is_write, slave=slave.name, waited=waited,
                    duration=duration,
                )
                self.sim.tracer.metrics.counter(
                    f"bus.{self.name}.transfers"
                ).inc()
                self.sim.tracer.metrics.histogram(
                    f"bus.{self.name}.transfer_ns"
                ).observe(duration)
            results = []
            for i, value in enumerate(values):
                offset = addr + i - slave.base
                results.append(slave.handler(offset, value, is_write))
            return results
        finally:
            self._grant.release()

    @property
    def slaves(self) -> List[BusSlave]:
        """All attached slaves."""
        return list(self._slaves)
