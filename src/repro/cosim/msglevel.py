"""Message-level (operating-system level) interface modeling.

The top rung of Figure 3: hardware and software components communicate
through ``send``, ``receive``, and ``wait`` operations on typed channels,
exactly the abstraction of Coumeri & Thomas [3].  One message costs O(1)
simulation events regardless of its size, which is why the paper calls
this level "very efficient computationally, but ... not [very] useful for
evaluating performance": the detailed bus occupancy, arbitration, and
per-word handshaking below the channel are abstracted into a single
latency number (or ignored entirely with ``latency_per_word=0``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional, Tuple

from repro.cosim.kernel import Event, SimulationError, Simulator
from repro.cosim.trace import MSG


class Channel:
    """A typed, optionally bounded, point-to-multipoint message channel.

    * ``capacity=None`` — unbounded buffer; ``send`` never blocks.
    * ``capacity=k`` — bounded; ``send`` blocks while ``k`` messages queue.
    * ``capacity=0`` — rendezvous; ``send`` blocks until a receiver takes
      the message.

    ``latency_per_message`` and ``latency_per_word`` give the channel an
    abstract timing model: a message of ``words`` words arrives that much
    later than it was sent.  Setting both to zero models the pure
    untimed-communication co-simulation of [2]/[3].
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "chan",
        capacity: Optional[int] = None,
        latency_per_message: float = 0.0,
        latency_per_word: float = 0.0,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be None or >= 0")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.latency_per_message = latency_per_message
        self.latency_per_word = latency_per_word
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._watchers: List[Event] = []
        self._space: Deque[Event] = deque()
        self.sent = 0
        self.received = 0

    # ------------------------------------------------------------------
    def transfer_delay(self, words: int) -> float:
        """Model latency for one message of ``words`` words."""
        return self.latency_per_message + self.latency_per_word * words

    def send(self, item: Any, words: int = 1) -> Generator:
        """Generator: send one message (blocking per the capacity rule)."""
        delay = self.transfer_delay(words)
        if delay > 0:
            yield self.sim.timeout(delay)
        if self.capacity == 0:
            # rendezvous: wait for a receiver
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                gate = Event(self.sim, f"{self.name}.rendezvous")
                self._items.append((gate, item))
                yield gate
        else:
            while (
                self.capacity is not None
                and len(self._items) >= self.capacity
            ):
                gate = Event(self.sim, f"{self.name}.space")
                self._space.append(gate)
                yield gate
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self._items.append(item)
        self.sent += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                MSG, self.name, op="send", words=words,
                pending=len(self._items),
            )
            self.sim.tracer.metrics.counter(
                f"channel.{self.name}.sent"
            ).inc()
        self._notify_watchers()

    def receive(self) -> Generator:
        """Generator: receive one message, blocking until one arrives."""
        if self._items:
            entry = self._items.popleft()
            if self.capacity == 0:
                gate, item = entry
                gate.succeed()
            else:
                item = entry
                if self._space:
                    self._space.popleft().succeed()
        else:
            gate = Event(self.sim, f"{self.name}.recv")
            self._getters.append(gate)
            item = yield gate
        self.received += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                MSG, self.name, op="receive", pending=len(self._items)
            )
            self.sim.tracer.metrics.counter(
                f"channel.{self.name}.received"
            ).inc()
        return item

    def wait(self) -> Generator:
        """Generator: block until a message *could* be received, without
        consuming it (the ``wait`` primitive of [3])."""
        if self._items:
            return
        gate = Event(self.sim, f"{self.name}.wait")
        self._watchers.append(gate)
        yield gate

    def _notify_watchers(self) -> None:
        watchers, self._watchers = self._watchers, []
        for gate in watchers:
            gate.succeed()

    @property
    def pending(self) -> int:
        """Messages currently buffered."""
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, pending={self.pending}, "
            f"sent={self.sent}, received={self.received})"
        )


class Mailbox:
    """A set of named channels — the 'operating system' view a software
    process gets of its communication environment."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._channels: dict = {}

    def channel(
        self,
        name: str,
        capacity: Optional[int] = None,
        latency_per_message: float = 0.0,
        latency_per_word: float = 0.0,
    ) -> Channel:
        """Get or create the named channel (parameters apply on creation)."""
        if name not in self._channels:
            self._channels[name] = Channel(
                self.sim,
                name,
                capacity=capacity,
                latency_per_message=latency_per_message,
                latency_per_word=latency_per_word,
            )
        return self._channels[name]

    def __iter__(self):
        return iter(self._channels.values())
