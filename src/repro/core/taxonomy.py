"""The Type I / Type II taxonomy and the classification vocabulary.

Section 2 of the paper: "Two broad classifications can be used to
distinguish different types of hardware/software systems.  The
distinguishing factor is whether the boundary between hardware and
software is a logical boundary (Type I) or a physical boundary
(Type II)."

* **Type I** — the hardware executes the software; the relationship is
  one of *abstraction level* (a microprocessor and its glue logic, an
  ASIP and its application).
* **Type II** — hardware and software are *physically separate
  components modeled at the same level of abstraction* (a processor
  plus a behaviorally-synthesized co-processor).
* **Mixed** — both boundary kinds in one system; the paper notes "to
  our knowledge, no published work has addressed this situation", and
  :func:`classify_system` detects it anyway.

The classification is *decidable from system structure*: build a
:class:`SystemModel` of components and relationships and call
:func:`classify_system` (experiment E1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Domain(enum.Enum):
    """Which side of the boundary a component is on."""

    HARDWARE = "hardware"
    SOFTWARE = "software"


class Abstraction(enum.IntEnum):
    """Modeling abstraction levels, low to high."""

    GATE = 1
    RTL = 2
    BEHAVIOR = 3
    ISA = 4
    HLL = 5  # high-level language


class SystemType(enum.Enum):
    """Figure 1's system classification."""

    TYPE_I = "Type I (logical boundary: hardware executes software)"
    TYPE_II = "Type II (physical boundary: peer components)"
    MIXED = "Mixed Type I / Type II"


class DesignTask(enum.Enum):
    """Figure 2's design activities, with their containment."""

    CODESIGN = "co-design"
    COSIMULATION = "co-simulation"
    COSYNTHESIS = "co-synthesis"
    PARTITIONING = "hw/sw partitioning"

    @property
    def parent(self) -> Optional["DesignTask"]:
        """The enclosing activity in Figure 2 (partitioning is performed
        within co-synthesis; everything is within co-design)."""
        if self is DesignTask.PARTITIONING:
            return DesignTask.COSYNTHESIS
        if self in (DesignTask.COSYNTHESIS, DesignTask.COSIMULATION):
            return DesignTask.CODESIGN
        return None

    def implies(self) -> "set[DesignTask]":
        """This task plus every enclosing task."""
        out = {self}
        cur = self.parent
        while cur is not None:
            out.add(cur)
            cur = cur.parent
        return out


class InterfaceLevel(enum.IntEnum):
    """Figure 3's interface abstraction ladder, most detailed first.

    Lower value = lower abstraction = more accurate for performance,
    more expensive to simulate.
    """

    SIGNAL = 1          # pins of a CPU / wires of a bus
    REGISTER = 2        # register reads/writes + interrupts
    BUS_TRANSACTION = 3
    MESSAGE = 4         # OS-level send / receive / wait

    @property
    def accurate_for_performance(self) -> bool:
        """The paper's guidance: low-level models are 'most accurate for
        evaluating performance'."""
        return self <= InterfaceLevel.BUS_TRANSACTION

    @property
    def description(self) -> str:
        return {
            InterfaceLevel.SIGNAL: "signal activity on pins/wires",
            InterfaceLevel.REGISTER: "register reads/writes, interrupts",
            InterfaceLevel.BUS_TRANSACTION: "bus transactions",
            InterfaceLevel.MESSAGE: "send, receive, wait",
        }[self]


class PartitionFactor(enum.Enum):
    """Section 3.3's partitioning considerations."""

    PERFORMANCE = "performance requirements"
    COST = "implementation cost"
    MODIFIABILITY = "modifiability"
    NATURE = "nature of computation"
    CONCURRENCY = "concurrency"
    COMMUNICATION = "communication"

    @property
    def type_ii_specific(self) -> bool:
        """Concurrency and communication arise from physical
        partitioning: 'For Type II systems, hardware/software
        partitioning implies physical partitioning.'"""
        return self in (
            PartitionFactor.CONCURRENCY, PartitionFactor.COMMUNICATION
        )


@dataclass
class ComponentModel:
    """One component of a system under classification."""

    name: str
    domain: Domain
    abstraction: Abstraction


@dataclass
class SystemModel:
    """Components plus their relationships.

    ``executes`` records (hardware, software) pairs where the hardware
    component runs the software; ``communicates`` records peer links.
    """

    components: List[ComponentModel]
    executes: List[Tuple[str, str]] = field(default_factory=list)
    communicates: List[Tuple[str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")
        known = set(names)
        for hw, sw in self.executes:
            if hw not in known or sw not in known:
                raise ValueError(f"executes refers to unknown component "
                                 f"({hw!r}, {sw!r})")
        for a, b in self.communicates:
            if a not in known or b not in known:
                raise ValueError(f"communicates refers to unknown "
                                 f"component ({a!r}, {b!r})")

    def component(self, name: str) -> ComponentModel:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(name)


@dataclass(frozen=True)
class ClassificationResult:
    """The decided type plus the evidence for it."""

    system_type: SystemType
    rationale: str


def classify_system(model: SystemModel) -> ClassificationResult:
    """Decide Type I / Type II / Mixed from structure.

    * An ``executes`` edge from hardware to software is a *logical*
      (abstraction-level) boundary — Type I evidence.
    * A ``communicates`` edge between a hardware and a software
      component at comparable abstraction is a *physical* boundary —
      Type II evidence.
    """
    type_i_evidence: List[str] = []
    type_ii_evidence: List[str] = []
    for hw, sw in model.executes:
        hw_c, sw_c = model.component(hw), model.component(sw)
        if hw_c.domain is not Domain.HARDWARE or \
                sw_c.domain is not Domain.SOFTWARE:
            raise ValueError(
                f"executes({hw!r}, {sw!r}) must run software on hardware"
            )
        if sw_c.abstraction <= hw_c.abstraction:
            raise ValueError(
                f"executed software {sw!r} must sit at a higher "
                f"abstraction than its processor {hw!r}"
            )
        type_i_evidence.append(f"{hw} executes {sw}")
    for a, b in model.communicates:
        ca, cb = model.component(a), model.component(b)
        if ca.domain is cb.domain:
            continue  # same-domain links carry no boundary information
        gap = abs(int(ca.abstraction) - int(cb.abstraction))
        if gap <= 1:
            type_ii_evidence.append(
                f"{a} <-> {b} are peers at comparable abstraction"
            )
    if type_i_evidence and type_ii_evidence:
        kind = SystemType.MIXED
    elif type_i_evidence:
        kind = SystemType.TYPE_I
    elif type_ii_evidence:
        kind = SystemType.TYPE_II
    else:
        raise ValueError(
            "no hardware/software boundary found: not a mixed system "
            "under the paper's definition"
        )
    rationale = "; ".join(type_i_evidence + type_ii_evidence)
    return ClassificationResult(system_type=kind, rationale=rationale)
