"""The paper's primary contribution, executable.

Adams & Thomas's tutorial contributes a *framework of criteria* for
classifying hardware/software co-design methodologies (Section 5):

1. the **type** of HW/SW system (Type I / Type II) — Figure 1;
2. the **design tasks** addressed (co-simulation, co-synthesis,
   partitioning) — Figure 2;
3. for co-simulation, the **interface abstraction level** — Figure 3;
4. for partitioning, the **factors considered** — Section 3.3.

This package encodes the framework (:mod:`repro.core.taxonomy`), the
characterization/comparison engine (:mod:`repro.core.criteria`), the
paper's Section 4 example systems as *live, runnable* methodology
objects backed by the rest of this library (:mod:`repro.core.examples`),
and an end-to-end co-design flow driver (:mod:`repro.core.flow`).
"""

from repro.core.taxonomy import (
    Abstraction,
    ComponentModel,
    DesignTask,
    Domain,
    InterfaceLevel,
    PartitionFactor,
    SystemModel,
    SystemType,
    classify_system,
)
from repro.core.criteria import (
    Characterization,
    Methodology,
    MethodologyRegistry,
    characterize,
    comparison_table,
)
from repro.core.flow import CodesignFlow, FlowReport

__all__ = [
    "SystemType",
    "DesignTask",
    "InterfaceLevel",
    "PartitionFactor",
    "Domain",
    "Abstraction",
    "ComponentModel",
    "SystemModel",
    "classify_system",
    "Methodology",
    "Characterization",
    "MethodologyRegistry",
    "characterize",
    "comparison_table",
    "CodesignFlow",
    "FlowReport",
]
