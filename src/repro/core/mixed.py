"""A Mixed Type I / Type II system — the paper's open case, built.

Section 2 closes with: "it is conceivable that a hardware/software
system could represent a mixture of Type I and Type II hardware/
software boundaries, but to our knowledge, no published work has
addressed this situation."  This module addresses it.

The system:

* **Type I boundary** — application software executes on the R32
  microprocessor, talking to glue logic and peripherals produced by
  Chinook-style interface synthesis (the Figure 4 configuration);
* **Type II boundary** — the same application offloads a behavior (an
  FIR filter) to a *behaviorally synthesized co-processor*, a peer
  component with its own datapath and controller (the Figure 8
  configuration), reached through one of the synthesized peripheral
  windows.

Both boundaries are live in one co-simulation: the CPU runs generated
driver code to marshal operands into the co-processor's registers; the
co-processor (modeled at the latency its HLS schedule actually has)
computes and interrupts; the ISR collects the result.  The classifier
recognizes the structure as :data:`repro.core.taxonomy.SystemType.MIXED`,
and the result is checked against the behavior's golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.taxonomy import (
    Abstraction,
    ClassificationResult,
    ComponentModel,
    Domain,
    SystemModel,
    classify_system,
)
from repro.cosim.kernel import Simulator
from repro.graph import kernels
from repro.graph.cdfg import CDFG
from repro.hls.synthesize import HlsResult, synthesize
from repro.interface.chinook import InterfaceDesign, synthesize_interface
from repro.interface.spec import Access, DeviceSpec, RegisterSpec, uart_spec
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

N_TAPS = 4
FIR_COEFFS = [3, -1, 4, 2]


def coprocessor_device_spec(n_args: int) -> DeviceSpec:
    """The co-processor as seen from the bus: argument registers, a
    command register, and a result register."""
    registers = [
        RegisterSpec(f"arg{i}", Access.RW) for i in range(n_args)
    ]
    registers.append(RegisterSpec("cmd", Access.WO))
    registers.append(RegisterSpec("result", Access.RO))
    return DeviceSpec(
        name="copro",
        registers=registers,
        has_interrupt=True,
        wait_states=0,
    )


@dataclass
class MixedSystemResult:
    """Everything the mixed-system run produced."""

    classification: ClassificationResult
    interface: InterfaceDesign
    hls: HlsResult
    outputs: Dict[str, int]
    reference: Dict[str, int]
    uart_bytes: List[int]
    simulated_ns: float
    instructions: int

    @property
    def functionally_correct(self) -> bool:
        """Co-processor result matches the behavior's golden reference."""
        return self.outputs == self.reference

    def summary(self) -> str:
        return (
            f"mixed system: {self.classification.system_type.value}\n"
            f"  glue {self.interface.glue_area:.0f} gates, "
            f"coprocessor {self.hls.area:.0f} gates "
            f"({self.hls.latency_cycles} steps)\n"
            f"  result {'matches' if self.functionally_correct else 'DIFFERS from'} "
            f"reference; {self.instructions} instructions, "
            f"{self.simulated_ns:.0f} ns"
        )


def mixed_system_model() -> SystemModel:
    """The structural model of the mixed system (for classification)."""
    return SystemModel(
        components=[
            ComponentModel("cpu", Domain.HARDWARE, Abstraction.GATE),
            ComponentModel("glue", Domain.HARDWARE, Abstraction.GATE),
            ComponentModel("application", Domain.SOFTWARE,
                           Abstraction.BEHAVIOR),
            ComponentModel("fir_coprocessor", Domain.HARDWARE,
                           Abstraction.BEHAVIOR),
        ],
        executes=[("cpu", "application")],          # Type I boundary
        communicates=[("application", "fir_coprocessor")],  # Type II
    )


def build_and_run_mixed_system(
    samples: Optional[List[int]] = None,
) -> MixedSystemResult:
    """Build the whole mixed system and run it to completion."""
    samples = samples if samples is not None else [5, 9, 2, 7]
    if len(samples) != N_TAPS:
        raise ValueError(f"need exactly {N_TAPS} samples")

    # the Type II peer: an HLS-synthesized FIR datapath
    behavior = kernels.fir(N_TAPS, coefficients=FIR_COEFFS)
    hls = synthesize(behavior)
    reference = behavior.evaluate(
        {f"x{i}": v & 0xFFFFFFFF for i, v in enumerate(samples)}
    )

    # the Type I side: interface synthesis for UART + co-processor window
    copro_spec = coprocessor_device_spec(N_TAPS)
    interface = synthesize_interface([uart_spec(), copro_spec])

    # application: marshal args, kick the co-processor, await the IRQ
    # (the generated ISR bumps the copro interrupt counter), then fetch
    # the result through the generated driver and report it on the UART
    copro_bit = 0  # assigned below once the glue's IRQ order is known
    copro_bit = interface.glue.irq_lines.index("copro")
    counter_addr = interface.driver.irq_counter_base + copro_bit
    arg_writes = "\n".join(
        f"""
        lw   r1, {0x500 + i:#x}(r0)
        jal  write_copro_arg{i}"""
        for i in range(N_TAPS)
    )
    main = f"""
        {arg_writes}
        li   r1, 1
        jal  write_copro_cmd        ; start the co-processor
    await:
        lw   r2, {counter_addr:#x}(r0)  ; IRQ counter from the ISR
        beq  r2, r0, await
        jal  read_copro_result      ; r2 = result, via generated driver
        sw   r2, 0x581(r0)          ; software-observed result
        mov  r1, r2
        jal  write_uart_data        ; report over the UART
        halt
    """
    program = interface.build_program(main)

    mem = Memory()
    mem.load_image(program.image)
    for i, v in enumerate(samples):
        mem.ram[0x500 + i] = v & 0xFFFFFFFF
    cpu = Cpu(Isa(), mem)
    sim = Simulator()

    uart_bytes: List[int] = []
    copro_regs: Dict[int, int] = {}
    cmd_offset = copro_spec.offset_of("cmd")
    result_offset = copro_spec.offset_of("result")
    start_event = sim.event("copro.start")

    def uart_model(offset, value, is_write):
        if is_write and offset == 0:
            uart_bytes.append(value)
        return 0

    def copro_model(offset, value, is_write):
        if is_write:
            copro_regs[offset] = value
            if offset == cmd_offset and not start_event.triggered:
                start_event.succeed()
            return 0
        return copro_regs.get(offset, 0)

    backplane = interface.deploy(
        sim, cpu, {"uart": uart_model, "copro": copro_model}
    )

    def coprocessor():
        """The Type II peer: waits for cmd, computes at its synthesized
        latency, posts the result, raises its interrupt line."""
        yield start_event
        yield sim.timeout(hls.latency_ns)
        inputs = {
            f"x{i}": copro_regs.get(i, 0) for i in range(N_TAPS)
        }
        outputs = hls.simulate(inputs)
        copro_regs[result_offset] = outputs["y"]
        backplane.raise_device_irq("copro")

    sim.process(coprocessor(), name="fir_coprocessor")
    sim.run(until=1e7)

    # the result as the *software* observed it (stored after fetching
    # it through the generated driver routine)
    outputs = {"y": cpu.memory.ram.get(0x581, 0)}
    return MixedSystemResult(
        classification=classify_system(mixed_system_model()),
        interface=interface,
        hls=hls,
        outputs=outputs,
        reference=reference,
        uart_bytes=uart_bytes,
        simulated_ns=sim.now,
        instructions=cpu.instr_count,
    )
