"""The end-to-end co-design flow driver.

``CodesignFlow`` ties the library together the way Figure 2 nests the
activities: specification → partitioning (within co-synthesis) →
co-simulation of the partitioned system for validation.

The co-simulation stage is genuinely independent of the partition
evaluator: the partitioned task graph is rebuilt as communicating
simulation processes — software tasks contend for the processor,
hardware tasks for the co-processor's controllers, and every
boundary-crossing edge becomes a message channel with the send/
receive/wait semantics of [3].  The flow reports both the analytic
latency (list-schedule evaluation) and the simulated latency, and their
agreement — the cross-check a real methodology would run before
committing to silicon.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional

from repro.cosim.kernel import Event, Simulator
from repro.cosim.msglevel import Channel
from repro.estimate.communication import CommModel, TIGHT
from repro.graph.taskgraph import TaskGraph
from repro.partition.annealing import simulated_annealing
from repro.partition.cosyma import cosyma_partition
from repro.partition.cost import CostWeights
from repro.partition.gclp import gclp_partition
from repro.partition.greedy import greedy_partition
from repro.partition.kl import kernighan_lin
from repro.partition.problem import PartitionProblem, PartitionResult
from repro.partition.vulcan import vulcan_partition

ALGORITHMS: Dict[str, Callable[..., PartitionResult]] = {
    "greedy": greedy_partition,
    "kl": kernighan_lin,
    "vulcan": vulcan_partition,
    "cosyma": cosyma_partition,
    "gclp": gclp_partition,
    "annealing": lambda p, weights: simulated_annealing(
        p, weights=weights, rng=random.Random(0)
    ),
}


class _Pool:
    """A counting resource with FIFO handoff (CPU or controller pool)."""

    def __init__(self, sim: Simulator, size: int, name: str) -> None:
        self.sim = sim
        self.name = name
        self._free = size
        self._waiters: Deque[Event] = deque()

    def acquire(self):
        if self._free > 0:
            self._free -= 1
            return
        gate = Event(self.sim, f"{self.name}.grant")
        self._waiters.append(gate)
        yield gate

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._free += 1


@dataclass
class SimulatedSystem:
    """What the validation co-simulation measured."""

    latency_ns: float
    messages: int
    activations: int
    finish_times: Dict[str, float]


@dataclass
class FlowReport:
    """The flow's combined output."""

    partition: PartitionResult
    simulated: SimulatedSystem

    @property
    def analytic_latency_ns(self) -> float:
        return self.partition.evaluation.latency_ns

    @property
    def simulated_latency_ns(self) -> float:
        return self.simulated.latency_ns

    @property
    def agreement(self) -> float:
        """Analytic/simulated latency ratio (1.0 = perfect agreement)."""
        if self.simulated_latency_ns == 0:
            return 1.0
        return self.analytic_latency_ns / self.simulated_latency_ns

    def summary(self) -> str:
        return (
            f"{self.partition.summary()}\n"
            f"co-simulation: {self.simulated_latency_ns:.0f} ns "
            f"({self.simulated.messages} boundary messages, "
            f"agreement {self.agreement:.2f})"
        )


class CodesignFlow:
    """Configure once, :meth:`run` to get a validated partition."""

    def __init__(
        self,
        graph: TaskGraph,
        deadline_ns: Optional[float] = None,
        hw_area_budget: Optional[float] = None,
        comm: CommModel = TIGHT,
        hw_parallelism: Optional[int] = 1,
        algorithm: str = "kl",
        weights: CostWeights = CostWeights(),
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise KeyError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        self.problem = PartitionProblem(
            graph=graph,
            comm=comm,
            hw_area_budget=hw_area_budget,
            deadline_ns=deadline_ns,
            hw_parallelism=hw_parallelism,
        )
        self.algorithm = algorithm
        self.weights = weights

    def run(self) -> FlowReport:
        """Partition, then validate by message-level co-simulation."""
        partition = ALGORITHMS[self.algorithm](
            self.problem, weights=self.weights
        )
        simulated = simulate_partition(self.problem, partition.hw_tasks)
        return FlowReport(partition=partition, simulated=simulated)


def simulate_partition(
    problem: PartitionProblem,
    hw_tasks: FrozenSet[str],
) -> SimulatedSystem:
    """Run the partitioned system as communicating sim processes.

    Software tasks contend for the single CPU; hardware tasks for the
    co-processor's ``hw_parallelism`` controllers; boundary edges are
    message channels with the communication model's latency.
    """
    graph = problem.graph
    hw = set(hw_tasks)
    sim = Simulator()
    cpu = _Pool(sim, 1, "cpu")
    n_hw = (
        problem.hw_parallelism
        if problem.hw_parallelism is not None
        else max(1, len(hw))
    )
    coproc = _Pool(sim, n_hw, "coproc")

    done_events: Dict[str, Event] = {
        name: Event(sim, f"{name}.done") for name in graph.task_names
    }
    channels: Dict[tuple, Channel] = {}
    messages = {"count": 0}
    finish: Dict[str, float] = {}

    for edge in graph.edges:
        if (edge.src in hw) != (edge.dst in hw):
            channels[(edge.src, edge.dst)] = Channel(
                sim,
                name=f"{edge.src}->{edge.dst}",
                latency_per_message=problem.comm.sync_overhead_ns,
                latency_per_word=problem.comm.word_time_ns,
            )

    def task_proc(name: str):
        task = graph.task(name)
        in_hw = name in hw
        for edge in graph.in_edges(name):
            key = (edge.src, name)
            if key in channels:
                yield from channels[key].receive()
            else:
                yield done_events[edge.src]
        pool = coproc if in_hw else cpu
        yield from pool.acquire()
        yield sim.timeout(task.hw_time if in_hw else task.sw_time)
        pool.release()
        finish[name] = sim.now
        done_events[name].succeed()
        for edge in graph.out_edges(name):
            key = (name, edge.dst)
            if key in channels:
                messages["count"] += 1
                # deliver concurrently: each boundary edge pays its own
                # latency from the finish time, not queued behind its
                # siblings (matches the analytic model's per-edge delay)
                sim.process(
                    channels[key].send(sim.now, words=edge.volume),
                    name=f"{name}->{edge.dst}.msg",
                )

    for name in graph.task_names:
        sim.process(task_proc(name), name=name)
    sim.run()
    if len(finish) != len(graph):
        raise RuntimeError(
            "co-simulation deadlocked: "
            f"{sorted(set(graph.task_names) - set(finish))} never finished"
        )
    return SimulatedSystem(
        latency_ns=max(finish.values(), default=0.0),
        messages=messages["count"],
        activations=sim.activations,
        finish_times=finish,
    )
