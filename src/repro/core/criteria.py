"""The four-criteria characterization and comparison engine.

Section 5: "In this tutorial we have presented a set of criteria that
can be used to compare approaches to hardware/software co-design ...
Since hardware/software co-design can mean many things, it is important
to determine characteristics of a given approach before evaluating it
or comparing it to some other example."

A :class:`Methodology` describes one approach; :func:`characterize`
applies the criteria (validating the structural rules of Figures 2/3
and Section 3.3); :func:`comparison_table` renders the survey table the
paper walks through in prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.core.taxonomy import (
    DesignTask,
    InterfaceLevel,
    PartitionFactor,
    SystemType,
)


class CriteriaError(ValueError):
    """Raised when a methodology description violates the framework."""


@dataclass
class Methodology:
    """One co-design approach, described by the paper's vocabulary.

    ``demo`` optionally names a callable that *runs* a working instance
    of the methodology using this library (see
    :mod:`repro.core.examples`), making the registry executable rather
    than merely descriptive.
    """

    name: str
    system_type: SystemType
    tasks: FrozenSet[DesignTask]
    cosim_levels: FrozenSet[InterfaceLevel] = frozenset()
    partition_factors: FrozenSet[PartitionFactor] = frozenset()
    references: str = ""
    implemented_by: str = ""
    demo: Optional[Callable[[], object]] = None

    def __post_init__(self) -> None:
        self.tasks = frozenset(self.tasks)
        self.cosim_levels = frozenset(self.cosim_levels)
        self.partition_factors = frozenset(self.partition_factors)


@dataclass(frozen=True)
class Characterization:
    """The paper's four criteria applied to one methodology."""

    name: str
    system_type: SystemType            # criterion 1
    tasks: FrozenSet[DesignTask]       # criterion 2 (closure of Figure 2)
    cosim_levels: FrozenSet[InterfaceLevel]      # criterion 3
    partition_factors: FrozenSet[PartitionFactor]  # criterion 4

    def addresses(self, task: DesignTask) -> bool:
        """Whether the methodology addresses a design task."""
        return task in self.tasks


def characterize(methodology: Methodology) -> Characterization:
    """Apply the four criteria, enforcing the framework's structure:

    * Figure 2: partitioning happens within co-synthesis; every task
      implies co-design.  The returned task set is the closure.
    * Criterion 3 only applies when co-simulation is addressed.
    * Criterion 4 only applies when partitioning is addressed.
    * Section 3.3: concurrency/communication factors only make sense
      where partitioning is physical (Type II or Mixed).
    """
    closure: set = set()
    for task in methodology.tasks:
        closure |= task.implies()
    if methodology.cosim_levels and \
            DesignTask.COSIMULATION not in closure:
        raise CriteriaError(
            f"{methodology.name}: cosim levels given but co-simulation "
            "is not an addressed task"
        )
    if methodology.partition_factors and \
            DesignTask.PARTITIONING not in closure:
        raise CriteriaError(
            f"{methodology.name}: partition factors given but "
            "partitioning is not an addressed task"
        )
    if methodology.system_type is SystemType.TYPE_I:
        bad = {
            f for f in methodology.partition_factors if f.type_ii_specific
        }
        if bad:
            raise CriteriaError(
                f"{methodology.name}: factors {sorted(f.name for f in bad)} "
                "arise from physical partitioning, which a Type I "
                "boundary does not have"
            )
    return Characterization(
        name=methodology.name,
        system_type=methodology.system_type,
        tasks=frozenset(closure),
        cosim_levels=methodology.cosim_levels,
        partition_factors=methodology.partition_factors,
    )


class MethodologyRegistry:
    """A named collection of methodologies (the survey's subjects)."""

    def __init__(self) -> None:
        self._entries: Dict[str, Methodology] = {}

    def register(self, methodology: Methodology) -> Methodology:
        if methodology.name in self._entries:
            raise CriteriaError(
                f"methodology {methodology.name!r} already registered"
            )
        characterize(methodology)  # validate on entry
        self._entries[methodology.name] = methodology
        return methodology

    def get(self, name: str) -> Methodology:
        return self._entries[name]

    def all(self) -> List[Methodology]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def characterize_all(self) -> List[Characterization]:
        """Criteria applied to every registered methodology."""
        return [characterize(m) for m in self.all()]

    def inhabitants(self, task: DesignTask) -> List[str]:
        """Methodologies whose (closed) task set includes ``task`` —
        Figure 2's claim that every subset is populated."""
        return [
            c.name for c in self.characterize_all() if c.addresses(task)
        ]


_TYPE_SHORT = {
    SystemType.TYPE_I: "I",
    SystemType.TYPE_II: "II",
    SystemType.MIXED: "I+II",
}

_TASK_SHORT = {
    DesignTask.CODESIGN: "cd",
    DesignTask.COSIMULATION: "sim",
    DesignTask.COSYNTHESIS: "syn",
    DesignTask.PARTITIONING: "part",
}


def comparison_table(methodologies: Iterable[Methodology]) -> str:
    """Render the Section 5 survey as a fixed-width text table."""
    rows = [("methodology", "type", "tasks", "cosim levels",
             "partition factors")]
    for m in methodologies:
        c = characterize(m)
        tasks = "+".join(
            _TASK_SHORT[t] for t in sorted(c.tasks, key=lambda t: t.value)
            if t is not DesignTask.CODESIGN
        ) or "-"
        levels = ",".join(
            lvl.name.lower() for lvl in sorted(c.cosim_levels)
        ) or "-"
        factors = ",".join(
            f.name.lower() for f in sorted(
                c.partition_factors, key=lambda f: f.value
            )
        ) or "-"
        rows.append((c.name, _TYPE_SHORT[c.system_type], tasks, levels,
                     factors))
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
