"""The paper's Section 4 example systems, as live methodology objects.

Each example couples three things:

* a :class:`repro.core.criteria.Methodology` record carrying the
  paper's own classification of the approach;
* a :class:`repro.core.taxonomy.SystemModel` of the system's structure,
  so :func:`repro.core.taxonomy.classify_system` can *re-derive* the
  type the paper asserts (experiment E1);
* a ``demo`` callable that runs a working instance of the methodology
  on this library's substrates, so the registry describes running
  systems, not citations.

Note the scoping rule of Section 2: a system model contains "just those
components that are part of a particular design methodology" — which is
why the co-processor examples omit the instruction-set processor that
executes the software (the methodology treats the software as a peer
behavioral component, making the boundary physical: Type II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.criteria import Methodology, MethodologyRegistry
from repro.core.taxonomy import (
    Abstraction,
    ComponentModel,
    DesignTask,
    Domain,
    InterfaceLevel,
    PartitionFactor,
    SystemModel,
    SystemType,
)


@dataclass
class PaperExample:
    """One Section 4 example: classification + structure + live demo."""

    methodology: Methodology
    system_model: SystemModel
    section: str
    figure: str


def _embedded_demo() -> object:
    """Figure 4: interface synthesis + co-simulated driver execution."""
    from repro.cosim.kernel import Simulator
    from repro.interface.chinook import synthesize_interface
    from repro.interface.spec import timer_spec, uart_spec
    from repro.isa.cpu import Cpu, Memory
    from repro.isa.instructions import Isa

    design = synthesize_interface([uart_spec(), timer_spec()])
    program = design.build_program("""
        li  r1, 0x42
        jal write_uart_data
        jal read_uart_data
        sw  r2, 0x400(r0)
        halt
    """)
    mem = Memory()
    mem.load_image(program.image)
    cpu = Cpu(Isa(), mem)
    sim = Simulator()
    store: Dict[int, int] = {}

    def model(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store.get(offset, 0)

    design.deploy(sim, cpu, {"uart": model, "timer": model})
    sim.run(until=1e6)
    assert cpu.halted and cpu.memory.ram[0x400] == 0x42
    return design


def _multiproc_demo() -> object:
    """Figure 5: cost-minimizing allocation + mapping under a deadline."""
    from repro.cosynth import binpack_synthesis
    from repro.graph.generators import periodic_taskset

    graph = periodic_taskset(
        random.Random(5), n_tasks=10, period=100.0, utilization=1.2
    )
    result = binpack_synthesis(graph, 100.0)
    assert result is not None and result.feasible
    return result


def _asip_demo() -> object:
    """Figure 6: instruction-subset exploration on profiled kernels."""
    from repro.asip.explore import explore_asip
    from repro.graph import kernels

    workloads = {
        "fir": (kernels.fir(8, coefficients=[3, -5, 7, 2, 9, -1, 4, 6]),
                4.0),
        "crc": (kernels.crc_step(), 8.0),
    }
    points = explore_asip(workloads, [0.0, 400.0])
    weights = {n: w for n, (_g, w) in workloads.items()}
    assert points[-1].speedup(weights) > 1.0
    return points


def _special_fu_demo() -> object:
    """Figure 7: reconfigurable special-purpose functional units."""
    from repro.asip.metamorphosis import best_static_plan, plan_metamorphosis
    from repro.graph import kernels

    phases = {
        "filter": {"fir": (kernels.fir(8, coefficients=[1] * 8), 4.0)},
        "check": {"crc": (kernels.crc_step(), 4.0)},
    }
    morph = plan_metamorphosis(phases, fabric_area=250.0)
    static = best_static_plan(phases, fabric_area=250.0)
    assert morph.compute_cycles <= static.compute_cycles
    return morph, static


def _coprocessor_demo() -> object:
    """Figure 8: behavior-level partitioning + HLS co-processor."""
    from repro.cosynth.coprocessor import synthesize_coprocessor
    from repro.graph import kernels

    design = synthesize_coprocessor(
        {
            "dct": kernels.dct4(),
            "fir": kernels.fir(8),
            "crc": kernels.crc_step(),
        },
        dataflow=[("fir", "dct", 8.0), ("dct", "crc", 4.0)],
        deadline_ns=1500.0,
    )
    assert design.verify_all()
    return design


def _multithread_demo() -> object:
    """Figure 9: concurrency/communication-aware thread-count sweep."""
    from repro.cosynth.multithread import synthesize_multithreaded
    from repro.graph.generators import fork_join_graph

    graph = fork_join_graph(random.Random(3), n_branches=4, branch_len=2)
    design = synthesize_multithreaded(graph, max_threads=4)
    assert design.threads >= 1
    return design


def paper_examples() -> Dict[str, PaperExample]:
    """All six Section 4 examples, keyed by short name."""
    hll, beh, gate, isa_lvl = (
        Abstraction.HLL, Abstraction.BEHAVIOR, Abstraction.GATE,
        Abstraction.ISA,
    )
    hw, sw = Domain.HARDWARE, Domain.SOFTWARE
    return {
        "embedded_micro": PaperExample(
            methodology=Methodology(
                name="embedded microprocessor + glue logic",
                system_type=SystemType.TYPE_I,
                tasks=frozenset({DesignTask.COSIMULATION,
                                 DesignTask.COSYNTHESIS}),
                cosim_levels=frozenset({InterfaceLevel.SIGNAL}),
                references="[4] Becker et al.; [11] Chinook",
                implemented_by="repro.interface.chinook",
                demo=_embedded_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("cpu", hw, gate),
                    ComponentModel("glue", hw, gate),
                    ComponentModel("application", sw, hll),
                ],
                executes=[("cpu", "application")],
                communicates=[("glue", "application")],
            ),
            section="4.1", figure="4",
        ),
        "heterogeneous_multiproc": PaperExample(
            methodology=Methodology(
                name="heterogeneous multiprocessor",
                system_type=SystemType.TYPE_I,
                tasks=frozenset({DesignTask.COSYNTHESIS}),
                references="[9] Yen-Wolf; [12] SOS; [13] Beck",
                implemented_by="repro.cosynth.multiproc",
                demo=_multiproc_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("pe_array", hw, isa_lvl),
                    ComponentModel("tasks", sw, hll),
                ],
                executes=[("pe_array", "tasks")],
            ),
            section="4.2", figure="5",
        ),
        "asip": PaperExample(
            methodology=Methodology(
                name="application-specific instruction set processor",
                system_type=SystemType.TYPE_I,
                tasks=frozenset({DesignTask.COSYNTHESIS,
                                 DesignTask.PARTITIONING}),
                partition_factors=frozenset({
                    PartitionFactor.PERFORMANCE,
                    PartitionFactor.COST,
                    PartitionFactor.MODIFIABILITY,
                }),
                references="[14] PEAS-I",
                implemented_by="repro.asip.explore",
                demo=_asip_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("asip_core", hw, Abstraction.RTL),
                    ComponentModel("application", sw, hll),
                ],
                executes=[("asip_core", "application")],
            ),
            section="4.3", figure="6",
        ),
        "special_fu": PaperExample(
            methodology=Methodology(
                name="special-purpose functional units",
                system_type=SystemType.TYPE_I,
                tasks=frozenset({DesignTask.COSYNTHESIS,
                                 DesignTask.PARTITIONING}),
                partition_factors=frozenset({
                    PartitionFactor.PERFORMANCE,
                    PartitionFactor.COST,
                    PartitionFactor.NATURE,
                }),
                references="[15] Athanas-Silverman",
                implemented_by="repro.asip.metamorphosis",
                demo=_special_fu_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("core_plus_fus", hw, Abstraction.RTL),
                    ComponentModel("application", sw, hll),
                ],
                executes=[("core_plus_fus", "application")],
            ),
            section="4.4", figure="7",
        ),
        "coprocessor": PaperExample(
            methodology=Methodology(
                name="application-specific co-processor",
                system_type=SystemType.TYPE_II,
                tasks=frozenset({DesignTask.COSYNTHESIS,
                                 DesignTask.PARTITIONING}),
                partition_factors=frozenset({
                    PartitionFactor.PERFORMANCE,
                    PartitionFactor.COST,
                    PartitionFactor.COMMUNICATION,
                }),
                references="[6] Gupta-De Micheli; [16] [17]",
                implemented_by="repro.cosynth.coprocessor",
                demo=_coprocessor_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("software_behavior", sw, beh),
                    ComponentModel("coprocessor", hw, beh),
                ],
                communicates=[("software_behavior", "coprocessor")],
            ),
            section="4.5", figure="8",
        ),
        "multithreaded_coprocessor": PaperExample(
            methodology=Methodology(
                name="multi-threaded co-processor",
                system_type=SystemType.TYPE_II,
                tasks=frozenset({DesignTask.COSIMULATION,
                                 DesignTask.COSYNTHESIS,
                                 DesignTask.PARTITIONING}),
                cosim_levels=frozenset({InterfaceLevel.MESSAGE}),
                partition_factors=frozenset({
                    PartitionFactor.PERFORMANCE,
                    PartitionFactor.COST,
                    PartitionFactor.NATURE,
                    PartitionFactor.CONCURRENCY,
                    PartitionFactor.COMMUNICATION,
                }),  # "all ... except for modifiability" [10]
                references="[10] Adams-Thomas; [3] Coumeri-Thomas",
                implemented_by="repro.cosynth.multithread",
                demo=_multithread_demo,
            ),
            system_model=SystemModel(
                components=[
                    ComponentModel("software_processes", sw, beh),
                    ComponentModel("mt_coprocessor", hw, beh),
                ],
                communicates=[("software_processes", "mt_coprocessor")],
            ),
            section="4.5.1", figure="9",
        ),
    }


def paper_registry() -> MethodologyRegistry:
    """A registry pre-populated with the six Section 4 examples."""
    registry = MethodologyRegistry()
    for example in paper_examples().values():
        registry.register(example.methodology)
    return registry
