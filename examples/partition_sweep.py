#!/usr/bin/env python3
"""Parallel partition-heuristic sweep from the command line.

Fan a grid of (graph generator x cost model x heuristic x seed) cells
across worker processes, cache every completed cell on disk, and print
the Section 5-style comparison table over the swept workloads.

Grid syntax: each axis is a comma-separated list; seeds also accept
inclusive ranges ("0-7" or "0-3,8,12-13").  Cells are cached under
--cache keyed by a fingerprint of the full cell config, so re-running
with a grown grid only computes the new cells, and a pure re-run
computes nothing.

With --store the sweep runs on the durable campaign service instead:
cells are queued in a SQLite store, N shard processes claim/commit
them in batches, and a run interrupted at any point (Ctrl-C, SIGKILL,
power loss) resumes recomputing only uncommitted cells — with a final
table byte-identical to an uninterrupted run.  --import-cache migrates
an existing JSON --cache directory into the store.

Run:  python examples/partition_sweep.py \\
          --generators layered,forkjoin --cost-models default,comm_heavy \\
          --heuristics greedy,kl,vulcan,cosyma --seeds 0-3 \\
          --workers 4 --cache .sweep-cache
      python examples/partition_sweep.py \\
          --seeds 0-31 --workers 4 --store sweep.sqlite --resume
"""

import argparse
import sys

from repro.cosim.metrics import MetricsRegistry
from repro.graph.generators import COST_MODELS, GENERATORS
from repro.partition import HEURISTICS
from repro.sweep import (
    COMM_MODELS,
    ResultCache,
    expand_grid,
    parse_seed_spec,
    run_differential,
    run_sweep,
)


def _axis(value, known, what):
    names = [v.strip() for v in value.split(",") if v.strip()]
    if value.strip() == "all":
        return sorted(known)
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown {what} {name!r}; known: {', '.join(sorted(known))}"
            )
    return names


def _optional_float(value):
    return None if value.lower() in ("none", "off") else float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep the partition heuristics over synthetic "
                    "workload grids."
    )
    parser.add_argument("--generators", default="layered",
                        help="comma list or 'all' "
                             f"({', '.join(sorted(GENERATORS))})")
    parser.add_argument("--cost-models", default="default",
                        help="comma list or 'all' "
                             f"({', '.join(sorted(COST_MODELS))})")
    parser.add_argument("--heuristics", default="all",
                        help="comma list or 'all' "
                             f"({', '.join(sorted(HEURISTICS))})")
    parser.add_argument("--comm", default="default",
                        help="comma list or 'all' "
                             f"({', '.join(sorted(COMM_MODELS))})")
    parser.add_argument("--seeds", default="0-3",
                        help="seed spec: '0-7' or '0,3,9' (default 0-3)")
    parser.add_argument("--n-tasks", default="12",
                        help="comma list of workload sizes (default 12)")
    parser.add_argument("--deadline-factor", type=_optional_float,
                        default=0.7, metavar="F",
                        help="deadline = F x all-SW critical path "
                             "('none' = unconstrained; default 0.7)")
    parser.add_argument("--budget-factor", type=_optional_float,
                        default=0.5, metavar="F",
                        help="area budget = F x total standalone HW area "
                             "('none' = unbounded; default 0.5)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1 = in-process)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="result cache directory (default: no cache)")
    parser.add_argument("--store", default=None, metavar="FILE",
                        help="SQLite campaign store (durable job queue "
                             "+ results; resumable after any "
                             "interruption; excludes --cache)")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: narrate how much of the "
                             "grid is already committed before running "
                             "(resume itself is automatic)")
    parser.add_argument("--import-cache", default=None, metavar="DIR",
                        help="with --store: first import a JSON "
                             "ResultCache directory into the store")
    parser.add_argument("--flight-recorder", default=None,
                        metavar="FILE",
                        help="record live telemetry (heartbeats, "
                             "progress) to this JSONL file; read it "
                             "live with examples/campaign_top.py "
                             "--jsonl FILE")
    parser.add_argument("--telemetry", action="store_true",
                        help="with --store: record shard heartbeats "
                             "and queue gauges into the store's "
                             "telemetry table (campaign_top --store)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the result table as canonical JSON")
    parser.add_argument("--differential", type=int, default=0,
                        metavar="N",
                        help="also run the N-problem differential "
                             "invariant harness")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-run narration")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid + worker-count determinism "
                             "assertion")
    args = parser.parse_args(argv)

    if args.smoke:
        args.seeds = "0-1"
        args.heuristics = "greedy,kl"

    grid = expand_grid(
        generators=_axis(args.generators, GENERATORS, "generator"),
        n_tasks=[int(n) for n in args.n_tasks.split(",")],
        cost_models=_axis(args.cost_models, COST_MODELS, "cost model"),
        heuristics=_axis(args.heuristics, HEURISTICS, "heuristic"),
        comm=_axis(args.comm, COMM_MODELS, "comm model"),
        seeds=parse_seed_spec(args.seeds),
        deadline_factor=args.deadline_factor,
        area_budget_factor=args.budget_factor,
    )
    if args.store and args.cache:
        raise SystemExit("--store and --cache are mutually exclusive")
    if (args.resume or args.import_cache) and not args.store:
        raise SystemExit("--resume/--import-cache require --store")
    if args.telemetry and not args.store:
        raise SystemExit("--telemetry requires --store (pool mode "
                         "records with --flight-recorder instead)")
    if args.store:
        from repro.campaign import CampaignStore

        cache = CampaignStore(args.store)
        if args.import_cache:
            imported = cache.import_cache(ResultCache(args.import_cache))
            if not args.quiet:
                print(f"imported {imported} records from "
                      f"{args.import_cache} into {args.store}")
        if args.resume and not args.quiet:
            done = sum(1 for c in grid if c.fingerprint in cache)
            print(f"resume: {done}/{len(grid)} grid cells already "
                  f"committed in {args.store}")
    else:
        cache = ResultCache(args.cache) if args.cache else None
    metrics = MetricsRegistry()

    recorder = None
    if args.flight_recorder:
        from repro.obs import JsonlRecorder

        recorder = JsonlRecorder(args.flight_recorder)
    elif args.telemetry:
        from repro.obs import StoreRecorder

        recorder = StoreRecorder(cache)

    if not args.quiet:
        backing = (args.store and f"store {args.store}") or \
            (args.cache and f"cache {args.cache}") or "off"
        print(f"sweep: {len(grid)} cells, workers={args.workers}, "
              f"results={backing}")
    table = run_sweep(grid, workers=args.workers, cache=cache,
                      metrics=metrics, recorder=recorder)
    if args.flight_recorder and not args.quiet:
        print(f"  flight recorder: {args.flight_recorder}")
    if not args.quiet:
        print(f"  {table.stats.summary()}")
        print()
    print(table.comparison_report())

    if args.smoke:
        # the acceptance contract: identical table at 1 and 2 workers
        serial = run_sweep(grid, workers=1, cache=cache)
        pooled = run_sweep(grid, workers=2, cache=cache)
        assert serial.to_json() == pooled.to_json(), \
            "sweep table differs across worker counts"
        if not args.quiet:
            print("\nsmoke: table identical at 1 and 2 workers")

    if args.out:
        table.write_json(args.out)
        if not args.quiet:
            print(f"\nwrote {len(table)} records to {args.out}")

    if args.differential:
        report = run_differential(n_problems=args.differential)
        print()
        print(report.summary())
        if not report.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
