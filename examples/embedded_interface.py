#!/usr/bin/env python3
"""Figure 4: an embedded microprocessor system, interface-synthesized.

The Chinook-style flow [11] takes one shared specification of three
peripherals (UART, timer, GPIO) and generates *both* sides of the
interface: the glue logic (address decoder, interrupt combiner,
wait-state counters) and the software drivers (register access
routines, interrupt dispatch) — then the whole system is co-simulated:
the generated drivers run on the R32 against the generated glue, with
a hardware timer process raising real interrupts.

Run:  python examples/embedded_interface.py
"""

import argparse
import sys
from repro.cosim.kernel import Simulator
from repro.interface.chinook import synthesize_interface
from repro.interface.spec import gpio_spec, timer_spec, uart_spec
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

MAIN = """
        ; transmit a few bytes, then spin until 3 timer ticks arrived
        li   r1, 0x48           ; 'H'
        jal  write_uart_data
        li   r1, 0x49           ; 'I'
        jal  write_uart_data
    wait_ticks:
        lw   r2, 0x700(r0)      ; timer tick counter (bumped by the ISR)
        addi r3, r0, 3
        blt  r2, r3, wait_ticks
        halt
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    design = synthesize_interface([uart_spec(), timer_spec(), gpio_spec()])
    print(design.report())
    print()

    program = design.build_program(MAIN)
    mem = Memory()
    mem.load_image(program.image)
    cpu = Cpu(Isa(), mem)
    sim = Simulator()

    transmitted = []
    stores = {"uart": {}, "timer": {}, "gpio": {}}

    def uart_model(offset, value, is_write):
        if is_write and offset == 0:
            transmitted.append(value)
        if is_write:
            stores["uart"][offset] = value
            return 0
        return stores["uart"].get(offset, 0)

    def plain_model(name):
        def model(offset, value, is_write):
            if is_write:
                stores[name][offset] = value
                return 0
            return stores[name].get(offset, 0)
        return model

    backplane = design.deploy(sim, cpu, {
        "uart": uart_model,
        "timer": plain_model("timer"),
        "gpio": plain_model("gpio"),
    })

    def timer_hardware():
        for _tick in range(3):
            yield sim.timeout(1500.0)
            backplane.raise_device_irq("timer")

    sim.process(timer_hardware(), name="timer_hw")
    sim.run(until=1e7)

    timer_bit = design.glue.irq_lines.index("timer")
    ticks = cpu.memory.ram.get(design.driver.irq_counter_base + timer_bit, 0)
    print("co-simulation results:")
    print(f"  CPU halted:        {cpu.halted}")
    print(f"  UART transmitted:  "
          f"{''.join(chr(b) for b in transmitted)!r}")
    print(f"  timer interrupts:  {ticks} serviced "
          f"(of 3 raised by the hardware model)")
    print(f"  simulated time:    {sim.now:.0f} ns, "
          f"{cpu.instr_count} instructions")
    print(f"  glue area:         {design.glue_area:.0f} gates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
