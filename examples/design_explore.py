#!/usr/bin/env python3
"""Closed-loop design-space exploration from the command line.

Runs the DoE-seeded genetic explorer over (graph generator, task
count, heuristic + knobs, cost-tuning weights), evaluating genomes
through the sweep execution engine with full cache reuse, and prints
the Pareto front plus the weighted-sum recommendation.  With
``--scenario coproc`` the front gains a third objective: fault
*exposure*, measured by a real (cached) fault-injection campaign.

The front is deterministic end to end: the same spec produces
byte-identical front JSON at any worker count, cold or warm, with a
JSON cache or a durable SQLite store (``--smoke`` asserts exactly
that, plus that a warm re-run recomputes zero genomes).

Run:  python examples/design_explore.py
      python examples/design_explore.py --scenario coproc \\
          --population 16 --generations 5 --workers 4 --cache .dse
      python examples/design_explore.py --store dse.sqlite --resume
      python examples/design_explore.py --smoke --out front.json
"""

import argparse
import sys
import time

from repro.cosim.metrics import MetricsRegistry
from repro.explore import (
    ExploreSpec,
    ProblemSpec,
    explore,
    random_search,
)
from repro.obs.spans import SpanTracer
from repro.partition.seeding import ProgressProbe
from repro.sweep import ResultCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="GA + DoE design-space exploration with Pareto "
                    "selection")
    parser.add_argument("--generators", default="layered,forkjoin",
                        help="comma list of graph generators")
    parser.add_argument("--n-tasks", default="8,12,16",
                        help="comma list of workload sizes")
    parser.add_argument("--heuristics",
                        default="greedy,kl,annealing,vulcan,cosyma,gclp",
                        help="comma list of partition heuristics")
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--generations", type=int, default=5)
    parser.add_argument("--ga-seed", type=int, default=0)
    parser.add_argument("--problem-seed", type=int, default=0,
                        help="workload instance seed (fixed per run)")
    parser.add_argument("--scenario", default=None,
                        help="fault scenario for the exposure "
                             "objective (e.g. coproc); default: "
                             "2-objective cost x latency")
    parser.add_argument("--scenario-faults", type=int, default=40)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache", metavar="DIR",
                        help="JSON result cache (reuse across runs)")
    parser.add_argument("--store", metavar="FILE",
                        help="SQLite campaign store (durable, "
                             "resumable; excludes --cache)")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: narrate committed progress "
                             "before running (resume is automatic)")
    parser.add_argument("--random-baseline", action="store_true",
                        help="also run equal-budget random search and "
                             "compare front hypervolumes")
    parser.add_argument("--trace", metavar="FILE",
                        help="write the exploration timeline as a "
                             "Perfetto JSON trace")
    parser.add_argument("--out", metavar="FILE",
                        help="write the front as canonical JSON")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--smoke", action="store_true",
                        help="small search + determinism assertions: "
                             "serial == pooled front JSON, warm re-run "
                             "recomputes zero genomes")
    args = parser.parse_args(argv)

    if args.smoke:
        args.population = min(args.population, 8)
        args.generations = min(args.generations, 3)
        args.scenario_faults = min(args.scenario_faults, 12)

    spec = ExploreSpec(
        generators=tuple(args.generators.split(",")),
        n_tasks=tuple(int(n) for n in args.n_tasks.split(",")),
        heuristics=tuple(args.heuristics.split(",")),
        problem=ProblemSpec(seed=args.problem_seed),
        population=args.population,
        generations=args.generations,
        ga_seed=args.ga_seed,
        scenario=args.scenario,
        scenario_faults=args.scenario_faults,
    )

    if args.store and args.cache:
        raise SystemExit("--store and --cache are mutually exclusive")
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    if args.store:
        from repro.campaign import CampaignStore

        cache = CampaignStore(args.store)
        if args.resume and not args.quiet:
            print(f"resume: {len(cache)} cells already committed in "
                  f"{args.store}")
    else:
        cache = ResultCache(args.cache) if args.cache else None

    tracer = SpanTracer() if args.trace else None
    probe = ProgressProbe()
    metrics = MetricsRegistry()

    if not args.quiet:
        backing = (args.store and f"store {args.store}") or \
            (args.cache and f"cache {args.cache}") or "off"
        print(f"explore: population={spec.population} "
              f"generations={spec.generations} "
              f"scenario={spec.scenario or 'none'} "
              f"workers={args.workers} results={backing}")
    t0 = time.perf_counter()
    result = explore(spec, workers=args.workers, cache=cache,
                     metrics=metrics, span_tracer=tracer, probe=probe)
    elapsed = time.perf_counter() - t0

    if not args.quiet:
        print()
        for entry in result.history:
            print(f"  gen {entry['generation']}: "
                  f"archive={entry['archive']:>3} "
                  f"front={entry['front_size']:>3} "
                  f"hypervolume={entry['hypervolume']:.4f} "
                  f"best={entry['best_scalar']:.4f}")
        print()
    print(result.front_table())
    best = result.ranking()[0]
    print(f"\nweighted-sum pick: {best['fingerprint'][:12]} "
          f"(scalar {best['scalar']:.4f})")
    if not args.quiet:
        print(f"{result.stats.summary()}  [{elapsed:.2f}s wall]")

    if args.random_baseline:
        budget = spec.population * spec.generations
        baseline = random_search(spec, budget, workers=args.workers,
                                 cache=cache)
        # compare in one shared normalization so the volumes are
        # commensurable
        from repro.explore import normalized_hypervolume, \
            objective_bounds

        lo, hi = objective_bounds(result.points() + baseline.points())
        hv_ga = normalized_hypervolume(result.points(), lo, hi)
        hv_rand = normalized_hypervolume(baseline.points(), lo, hi)
        print(f"\nGA front hypervolume   {hv_ga:.4f}\n"
              f"random search (n={budget}) {hv_rand:.4f}")

    if args.smoke:
        # the acceptance contract, asserted live: byte-identical front
        # at 1 and 2 workers, and a warm re-run computes nothing
        serial = explore(spec, workers=1, cache=cache)
        assert serial.to_json() == result.to_json(), \
            "explore result differs across worker counts"
        if cache is not None:
            warm = explore(spec, workers=1, cache=cache)
            assert warm.to_json() == result.to_json(), \
                "warm re-run changed the front"
            assert warm.stats.computed == 0, \
                f"warm re-run recomputed {warm.stats.computed} genomes"
            print("\nsmoke: front identical at 1 and "
                  f"{args.workers} workers; warm re-run recomputed 0 "
                  "genomes")
        else:
            print("\nsmoke: front identical at 1 and "
                  f"{args.workers} workers")

    if args.trace:
        tracer.write_perfetto(args.trace)
        if not args.quiet:
            print(f"trace written to {args.trace}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.front_json())
        if not args.quiet:
            print(f"front JSON written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
