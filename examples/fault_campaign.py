#!/usr/bin/env python3
"""Fault-injection campaign over the co-simulated coprocessor system.

Runs the ``coproc`` scenario (R32 software + MAC coprocessor + rx FIFO
+ message channel, with a software shadow of the hardware MAC as the
built-in detection mechanism) under a seeded, stratified fault load
spanning every injection surface — signal and register bit-flips, CPU
state corruption, message-boundary faults, and timing faults caught by
the kernel watchdog — then prints the dependability table.

The campaign is deterministic end to end: the same seed produces the
same fault list, the same per-fault outcome, and therefore the same
histogram at any worker count (``--smoke`` asserts exactly that).

``--batch`` opts software-only scenarios (``swmac``) into the
vectorized batch tier (DESIGN §14): golden + every fault lane execute
as columns of one :class:`repro.isa.BatchCpu`, with lane-occupancy and
divergence-drain counters reported after the table.  Records are
byte-identical to the scalar path (``--smoke`` asserts that too).

Run:  python examples/fault_campaign.py
      python examples/fault_campaign.py --faults 200 --workers 4
      python examples/fault_campaign.py --scenario swmac --batch
      python examples/fault_campaign.py --smoke --out deps.json
"""

import argparse
import json
import sys
import time

from repro.cosim.metrics import MetricsRegistry
from repro.fault import OUTCOMES, SCENARIOS, run_campaign, sample_faults
from repro.sweep import ResultCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded fault-injection campaign")
    parser.add_argument("--scenario", default="coproc",
                        choices=sorted(SCENARIOS))
    parser.add_argument("--faults", type=int, default=66,
                        help="campaign size (default 66)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache", metavar="DIR",
                        help="reuse results across runs")
    parser.add_argument("--store", metavar="FILE",
                        help="SQLite campaign store (durable queue + "
                             "results, resumable; excludes --cache)")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: narrate committed progress "
                             "before running (resume is automatic)")
    parser.add_argument("--flight-recorder", metavar="FILE",
                        help="record live telemetry to this JSONL file "
                             "(campaign_top.py --jsonl FILE)")
    parser.add_argument("--telemetry", action="store_true",
                        help="with --store: record shard heartbeats "
                             "and queue gauges into the store's "
                             "telemetry table")
    parser.add_argument("--batch", action="store_true",
                        help="vectorized batch tier for software-only "
                             "scenarios (one lane per fault)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the dependability report as JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="small campaign + determinism assertions")
    args = parser.parse_args(argv)

    if args.smoke:
        args.faults = min(args.faults, 33)

    scenario = SCENARIOS[args.scenario]
    faults = sample_faults(scenario.targets, args.faults, seed=args.seed)
    if args.store and args.cache:
        raise SystemExit("--store and --cache are mutually exclusive")
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    if args.telemetry and not args.store:
        raise SystemExit("--telemetry requires --store (pool mode "
                         "records with --flight-recorder instead)")
    if args.store:
        from repro.campaign import CampaignStore

        cache = CampaignStore(args.store)
        if args.resume:
            print(f"resume: {len(cache)} cells already committed in "
                  f"{args.store}")
    else:
        cache = ResultCache(args.cache) if args.cache else None

    recorder = None
    if args.flight_recorder:
        from repro.obs import JsonlRecorder

        recorder = JsonlRecorder(args.flight_recorder)
    elif args.telemetry:
        from repro.obs import StoreRecorder

        recorder = StoreRecorder(cache)

    print(f"campaign: scenario={args.scenario} faults={len(faults)} "
          f"seed={args.seed} workers={args.workers}"
          + (" batch" if args.batch else ""))
    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    result = run_campaign(args.scenario, faults, workers=args.workers,
                          cache=cache, recorder=recorder,
                          metrics=metrics, batch=args.batch)
    elapsed = time.perf_counter() - t0
    print()
    print(result.dependability_table())
    print()
    print(f"{result.stats.summary()}  "
          f"[{len(faults) / elapsed:.0f} faults/s]")
    if args.batch:
        counters = metrics.snapshot()["counters"]
        lanes = counters.get("fault.batch.lanes", 0)
        if lanes:
            drained = counters.get("fault.batch.drained", 0)
            dispatches = counters.get("fault.batch.dispatches", 0)
            print(f"batch: {lanes} lanes, {dispatches} dispatches, "
                  f"{drained} divergence drains "
                  f"({drained / lanes:.1%} of lanes)")
        else:
            print(f"batch: scenario {args.scenario!r} has no "
                  f"software-only cells; ran scalar")

    if args.smoke:
        # the acceptance contract: identical histogram at 1 and N
        # workers, and every outcome class exercised
        serial = run_campaign(args.scenario, faults, workers=1)
        pooled = run_campaign(args.scenario, faults, workers=2)
        assert serial.to_json() == pooled.to_json(), \
            "campaign result differs across worker counts"
        if args.batch:
            assert result.to_json() == serial.to_json(), \
                "batch result differs from scalar"
            print("smoke: batch JSON byte-identical to scalar")
        hist = result.histogram()
        # crash needs a CPU to corrupt; msgpipe tops out at four classes
        expected = [o for o in OUTCOMES
                    if o != "crash" or scenario.targets.get("cpu")]
        missing = [o for o in expected if hist[o] == 0]
        assert not missing, f"outcome classes never seen: {missing}"
        print(f"smoke: histogram identical at 1 and 2 workers; "
              f"all {len(expected)} reachable outcome classes reached")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        print(f"dependability JSON written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
