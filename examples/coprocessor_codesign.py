#!/usr/bin/env python3
"""Figure 8: application-specific co-processor co-design.

Three behaviors (a DCT, an FIR filter, and a CRC update) are
implemented *both* ways from one CDFG each — R32 machine code by the
compiler, a datapath + FSM by high-level synthesis — then partitioned
between the instruction-set processor and a single-threaded
co-processor.  The example also contrasts the two extraction
directions the paper surveys:

* Vulcan-style (Gupta-De Micheli [6]): start all-hardware, move to
  software while performance holds — minimizes hardware;
* COSYMA-style (Henkel-Ernst [17]): start all-software, move hot spots
  to hardware — minimizes disruption.

Run:  python examples/coprocessor_codesign.py
"""

import argparse
import sys
from repro.cosynth.coprocessor import synthesize_coprocessor
from repro.graph import kernels


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    behaviors = {
        "dct": kernels.dct4(),
        "fir": kernels.fir(8),
        "crc": kernels.crc_step(),
    }
    dataflow = [("fir", "dct", 8.0), ("dct", "crc", 4.0)]

    print("behavior characterization (measured, not estimated):")
    header = f"  {'behavior':8s} {'sw ns':>8s} {'hw ns':>8s} " \
             f"{'hw area':>8s} {'parallel':>9s}"
    print(header)
    design = synthesize_coprocessor(
        behaviors, dataflow, deadline_ns=1500.0, algorithm="cosyma"
    )
    for name, impl in sorted(design.behaviors.items()):
        t = impl.task
        print(f"  {name:8s} {t.sw_time:8.0f} {t.hw_time:8.0f} "
              f"{t.hw_area:8.0f} {t.parallelism:9.2f}")
    print()

    for algorithm in ("cosyma", "vulcan"):
        design = synthesize_coprocessor(
            behaviors, dataflow, deadline_ns=1500.0, algorithm=algorithm
        )
        verified = design.verify_all()
        print(f"{algorithm:8s} -> {design.summary()}")
        print(f"          hardware/software/reference agreement: "
              f"{'PASS' if verified else 'FAIL'}")
    print()
    print("(every behavior's generated machine code and synthesized")
    print(" datapath were executed and checked against the dataflow")
    print(" reference - Section 3.2's unified functionality in action)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
