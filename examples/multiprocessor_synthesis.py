#!/usr/bin/env python3
"""Figure 5: heterogeneous multiprocessor co-synthesis.

"A more highly parallel architecture allows the use of slower,
less-expensive processing elements.  On the other hand, less
parallelism in the architecture allows fewer processing elements to be
used, also lowering the cost.  The goal is to find the right balance."

This example sweeps the deadline on a random periodic task set and lets
all three synthesizers choose allocations:

* exact ILP (SOS [12], branch-and-bound over LP relaxations),
* vector bin packing (Beck [13]),
* sensitivity-driven iterative improvement (Yen-Wolf [9]).

Run:  python examples/multiprocessor_synthesis.py
"""

import argparse
import sys
import random

from repro.cosynth import (
    binpack_synthesis,
    ilp_synthesis,
    sensitivity_synthesis,
)
from repro.estimate.software import default_processor_library
from repro.graph.generators import periodic_taskset


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    library = default_processor_library()
    graph = periodic_taskset(
        random.Random(5), n_tasks=10, period=100.0, utilization=1.5
    )
    print(f"task set: {len(graph)} tasks, serial load "
          f"{graph.total_time('sw'):.0f} ns on the reference processor")
    print("processor library:")
    for proc in library.values():
        print(f"  {proc.name:10s} cost {proc.cost:5.0f}  "
              f"throughput x{proc.speed_factor / proc.clock_ns * 10:.2f}")
    print()

    small = {k: library[k] for k in ("micro16", "r32", "dsp")}
    print(f"{'deadline':>9s} {'binpack':>22s} {'sensitivity':>22s} "
          f"{'ilp (3 types)':>22s}")
    for deadline in (60.0, 100.0, 200.0, 400.0, 800.0):
        row = [f"{deadline:9.0f}"]
        for synth, lib in (
            (binpack_synthesis, library),
            (sensitivity_synthesis, library),
            (ilp_synthesis, small),
        ):
            result = synth(graph, deadline, lib)
            if result is None:
                row.append(f"{'infeasible':>22s}")
            else:
                counts = "+".join(
                    f"{v}x{k}" for k, v in sorted(
                        result.allocation.counts.items()
                    )
                )
                row.append(f"{counts:>14s} ${result.cost:5.0f}")
        print(" ".join(row))
    print()
    print("shape to notice: as the deadline relaxes, every synthesizer")
    print("walks from few fast expensive PEs toward cheap slow ones -")
    print("the balance Figure 5's discussion describes.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
