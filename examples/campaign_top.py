#!/usr/bin/env python3
"""``top`` for campaigns: live status and crash post-mortems.

Reads the flight recorder (:mod:`repro.obs.live`) — the ``telemetry``
table of a :class:`~repro.campaign.store.CampaignStore` and/or an
append-only JSONL file — and renders, without the run's cooperation:

* a live status frame: one line per owner (shard, coordinator,
  driver) with heartbeat age, progress gauges, measured throughput,
  and a DEAD/hung verdict, plus queue depths and an ETA;
* a post-mortem report (``--post-mortem``): the last heartbeat per
  owner, uncommitted leases, the suspect cells a dead shard was
  holding, and permanently failed cells — as markdown or JSON.

Both are read-only: pointing this at a live campaign is safe and is
exactly the intended use.  ``--watch`` redraws until the queue drains.

Run:  python examples/campaign_top.py --store campaign.sqlite
      python examples/campaign_top.py --store campaign.sqlite --watch 2
      python examples/campaign_top.py --store campaign.sqlite --post-mortem --out pm.md
      python examples/campaign_top.py --jsonl flight.jsonl --json
      python examples/campaign_top.py --smoke
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.campaign.store import CampaignStore
from repro.obs import (
    TelemetrySample,
    post_mortem,
    read_samples,
    render_status,
)


def gather(args):
    """(store or None, JSONL samples) from the CLI source flags."""
    store = None
    if args.store:
        if not os.path.exists(args.store):
            raise SystemExit(f"no such store: {args.store}")
        store = CampaignStore(args.store)
    jsonl = read_samples(args.jsonl) if args.jsonl else []
    return store, jsonl


def status_frame(store, jsonl, title="campaign status"):
    """One rendered status frame plus the underlying post-mortem."""
    report = post_mortem(store=store, samples=jsonl)
    samples = list(jsonl)
    if store is not None:
        samples = [
            TelemetrySample.from_dict(doc) for doc in store.telemetry()
        ] + samples
    queue = store.queue_counts() if store is not None else None
    text = render_status(
        samples, queue_counts=queue,
        dead_owners=report.dead_owners(), title=title,
    )
    return text, report


def run_smoke() -> int:
    """Self-contained demo: a tiny store campaign with the recorder
    armed, then the live frame and a post-mortem of the result."""
    from repro.obs import StoreRecorder
    from repro.sweep import expand_grid, run_sweep

    with tempfile.TemporaryDirectory(prefix="campaign_top_") as tmp:
        store = CampaignStore(os.path.join(tmp, "campaign.sqlite"))
        grid = expand_grid(
            generators=("layered",), n_tasks=(6,),
            heuristics=("greedy",), seeds=range(4),
        )
        print(f"smoke campaign: {len(grid)} cells into {store.path}")
        table = run_sweep(grid, workers=2, cache=store,
                          recorder=StoreRecorder(store))
        print(f"  {table.stats.summary()}")
        print()
        text, report = status_frame(store, [], title="smoke campaign")
        print(text)
        print()
        print(report.to_markdown())
        if not any(s["kind"] == "heartbeat"
                   for s in store.telemetry()):
            print("SMOKE FAILED: no heartbeats recorded",
                  file=sys.stderr)
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Live campaign status / crash post-mortem from "
                    "the flight recorder (store telemetry table "
                    "and/or JSONL file)."
    )
    parser.add_argument("--store", default=None, metavar="DB",
                        help="campaign store (SQLite) to read")
    parser.add_argument("--jsonl", default=None, metavar="FILE",
                        help="JSONL flight-recorder file to read")
    parser.add_argument("--post-mortem", action="store_true",
                        help="render the full post-mortem report "
                             "instead of the status frame")
    parser.add_argument("--json", action="store_true",
                        help="emit the post-mortem as JSON")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the rendered output here")
    parser.add_argument("--watch", type=float, default=None,
                        metavar="SECONDS",
                        help="redraw every SECONDS until the store's "
                             "queue drains (needs --store)")
    parser.add_argument("--smoke", action="store_true",
                        help="self-contained demo campaign for CI")
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke()
    if not args.store and not args.jsonl:
        parser.error("need --store and/or --jsonl (or --smoke)")
    if args.watch is not None and not args.store:
        parser.error("--watch needs --store (its stop condition is "
                     "the queue draining)")

    store, jsonl = gather(args)

    if args.watch is not None:
        try:
            while True:
                text, _ = status_frame(store, jsonl)
                print(text, flush=True)
                counts = store.queue_counts()
                if sum(n for state, n in counts.items()
                       if state in ("pending", "leased")) == 0:
                    break
                time.sleep(args.watch)
                print()
        except KeyboardInterrupt:
            pass
        return 0

    text, report = status_frame(store, jsonl)
    if args.post_mortem or args.json:
        rendered = (report.to_json() if args.json
                    else report.to_markdown())
    else:
        rendered = text
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered if rendered.endswith("\n")
                     else rendered + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
