#!/usr/bin/env python3
"""Figure 3's ladder with the lights on: tracing the co-simulation.

`cosim_abstraction_ladder.py` measures the abstraction ladder with one
scalar per level (kernel activations).  This example attaches a
:class:`repro.cosim.trace.Tracer` and breaks the cost down: where the
activations go per rung, how long processes wait, how busy the bus
grant is — then exports the pin-level run as a JSON event trace and a
VCD waveform you can open in any waveform viewer (GTKWave etc.).

Run:  python examples/cosim_trace_ladder.py [output-dir]
      (output defaults to a fresh temporary directory)
"""

import argparse
import os
import sys
import tempfile

from repro.cosim.backplane import (
    Backplane,
    PinLevelAdapter,
    RegisterAdapter,
    TransactionAdapter,
)
from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Simulator
from repro.cosim.pinlevel import PinBus, PinBusMaster, PinBusSlave, \
    run_until_complete
from repro.cosim.signals import Clock
from repro.cosim.trace import Tracer
from repro.cosim.translevel import RegisterDevice
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

PROGRAM = """
        addi r4, r0, 0          ; index
        addi r5, r0, 8          ; word count
    loop:
        add  r6, r4, r4
        addi r6, r6, 3          ; value = 2*i + 3
        sw   r6, 0x800(r4)      ; write to device
        lw   r7, 0x800(r4)      ; read it back
        sw   r7, 0x400(r4)      ; stash in RAM for checking
        addi r4, r4, 1
        bne  r4, r5, loop
        halt
"""


def make_ram(size=16):
    store = [0] * size

    def handler(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    return handler


def run_level(name):
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    isa = Isa()
    prog = assemble(PROGRAM, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    bp = Backplane(sim, cpu, clock_period=10.0)
    if name == "pin":
        clk = Clock(sim, period=10.0)
        bus = PinBus(sim, clk)
        PinBusSlave(bus, "ram", 0x800, 16, make_ram())
        adapter = PinLevelAdapter(PinBusMaster(bus), base=0x800)
    elif name == "transaction":
        bus = SystemBus(sim, arbitration_time=10.0, setup_time=10.0,
                        word_time=10.0)
        bus.attach_slave("ram", 0x800, 16, make_ram())
        adapter = TransactionAdapter(bus, base=0x800)
    else:
        adapter = RegisterAdapter(
            RegisterDevice(sim, "ram", 16, access_time=10.0)
        )
    bp.mount(0x800, 16, adapter)
    proc = bp.start()
    run_until_complete(sim, [proc], limit=1e7)
    result = [cpu.memory.ram.get(0x400 + i, 0) for i in range(8)]
    assert result == [2 * i + 3 for i in range(8)], name
    return sim, tracer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("outdir", nargs="?", default=None,
                        help="directory for the JSON trace + VCD "
                             "(default: a fresh temp directory)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    args = parser.parse_args(argv)
    outdir = args.outdir or tempfile.mkdtemp(prefix="cosim_trace_")
    os.makedirs(outdir, exist_ok=True)

    print("the Figure 3 ladder, with a tracer attached:\n")
    print(f"{'level':>12s} {'activations':>12s} {'records':>9s} "
          f"{'event fires':>12s} {'signal edges':>13s}")
    tracers = {}
    for level in ("pin", "transaction", "register"):
        sim, tracer = run_level(level)
        tracers[level] = tracer
        kinds = tracer.by_kind()
        counters = tracer.metrics.counters
        signal_changes = counters.get("kernel.signal_changes")
        print(f"{level:>12s} {sim.activations:>12d} "
              f"{len(tracer.records):>9d} "
              f"{kinds.get('event', 0):>12d} "
              f"{(signal_changes.value if signal_changes else 0):>13d}")

    print("\nper-rung cost breakdown (trace records by kind):")
    for level, tracer in tracers.items():
        kinds = tracer.by_kind()
        top = sorted(kinds.items(), key=lambda kv: -kv[1])[:4]
        parts = ", ".join(f"{k}={n}" for k, n in top)
        print(f"  {level:>12s}: {parts}")

    pin = tracers["pin"]
    json_path = os.path.join(outdir, "pin_trace.json")
    vcd_path = os.path.join(outdir, "pin_wave.vcd")
    pin.write_json(json_path, indent=1)
    pin.write_vcd(vcd_path)
    print(f"\nJSON trace written:   {json_path} "
          f"({os.path.getsize(json_path)} bytes, {len(pin.records)} "
          f"records)")
    print(f"VCD waveform written: {vcd_path} "
          f"({os.path.getsize(vcd_path)} bytes, open with a waveform "
          f"viewer)")

    print("\nper-process metrics summary (pin level):")
    print(pin.summary())

    print("\nthe same simulation, the same result — but now every rung")
    print("of the cost ladder is a measured breakdown, not one number.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
