#!/usr/bin/env python3
"""Beyond the paper: a Mixed Type I / Type II system.

Section 2 of Adams & Thomas ends with an open problem: "it is
conceivable that a hardware/software system could represent a mixture
of Type I and Type II hardware/software boundaries, but to our
knowledge, no published work has addressed this situation."

This example builds one:

* Type I — application software executing on the R32, against
  Chinook-generated glue and drivers (the Figure 4 configuration);
* Type II — the application offloads an FIR filter to a behaviorally
  synthesized co-processor, a peer with its own datapath and
  controller (the Figure 8 configuration).

Both boundaries run live in one co-simulation: the CPU marshals
operands through generated driver routines, the co-processor computes
at the latency its HLS schedule actually has, interrupts the CPU, and
the result returns over the UART — checked against the behavior's
golden reference.

Run:  python examples/mixed_system.py
"""

import argparse
import sys
from repro.core.mixed import FIR_COEFFS, build_and_run_mixed_system


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    samples = [5, 9, 2, 7]
    print("offloaded behavior: 4-tap FIR,",
          f"coefficients {FIR_COEFFS}, samples {samples}")
    print(f"expected y = {sum(c * x for c, x in zip(FIR_COEFFS, samples))}")
    print()

    result = build_and_run_mixed_system(samples)
    print(result.summary())
    print()
    print(f"classifier rationale: {result.classification.rationale}")
    print(f"UART observed: {result.uart_bytes}")
    print()
    print("the result crossed BOTH boundary kinds: Type II (datapath ->")
    print("device registers, at synthesized latency, signalled by a real")
    print("interrupt) and Type I (generated driver -> software via the")
    print("generated address decoder).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
