#!/usr/bin/env python3
"""Figure 3: the interface-abstraction ladder, measured.

The same software (a loopback exchange with a device window) runs under
the co-simulation backplane with the hardware/software interface
modeled at three abstraction levels: pin-level handshake, arbitrated
bus transaction, and plain register access.  The paper's claim:

  "At the lowest level, the interface ... may be modeled by the
   activity on the pins of a CPU ... most accurate for evaluating
   performance, but computationally expensive.  [At a high level] ...
   much more efficient computationally, but may not be useful for
   evaluating performance."

We print, per level: the functional result (identical everywhere),
simulated model time, interface stall time, and kernel activations
(the simulation-cost metric).

Run:  python examples/cosim_abstraction_ladder.py
"""

import argparse
import sys
from repro.cosim.backplane import (
    Backplane,
    PinLevelAdapter,
    RegisterAdapter,
    TransactionAdapter,
)
from repro.cosim.bus import SystemBus
from repro.cosim.kernel import Simulator
from repro.cosim.pinlevel import PinBus, PinBusMaster, PinBusSlave, \
    run_until_complete
from repro.cosim.signals import Clock
from repro.cosim.translevel import RegisterDevice
from repro.isa.assembler import assemble
from repro.isa.cpu import Cpu, Memory
from repro.isa.instructions import Isa

PROGRAM = """
        addi r4, r0, 0          ; index
        addi r5, r0, 8          ; word count
    loop:
        add  r6, r4, r4
        addi r6, r6, 3          ; value = 2*i + 3
        sw   r6, 0x800(r4)      ; write to device
        lw   r7, 0x800(r4)      ; read it back
        sw   r7, 0x400(r4)      ; stash in RAM for checking
        addi r4, r4, 1
        bne  r4, r5, loop
        halt
"""


def make_ram(size=16):
    store = [0] * size

    def handler(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    return handler


def run_level(name):
    sim = Simulator()
    isa = Isa()
    prog = assemble(PROGRAM, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    bp = Backplane(sim, cpu, clock_period=10.0)
    if name == "pin":
        clk = Clock(sim, period=10.0)
        bus = PinBus(sim, clk)
        PinBusSlave(bus, "ram", 0x800, 16, make_ram())
        adapter = PinLevelAdapter(PinBusMaster(bus), base=0x800)
    elif name == "transaction":
        bus = SystemBus(sim, arbitration_time=10.0, setup_time=10.0,
                        word_time=10.0)
        bus.attach_slave("ram", 0x800, 16, make_ram())
        adapter = TransactionAdapter(bus, base=0x800)
    else:
        adapter = RegisterAdapter(
            RegisterDevice(sim, "ram", 16, access_time=10.0)
        )
    bp.mount(0x800, 16, adapter)
    proc = bp.start()
    run_until_complete(sim, [proc], limit=1e7)
    result = [cpu.memory.ram.get(0x400 + i, 0) for i in range(8)]
    return result, sim.now, bp.stall_time, sim.activations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    print("same software, three interface models (Figure 3):\n")
    print(f"{'level':>12s} {'result ok':>10s} {'time ns':>10s} "
          f"{'stall ns':>10s} {'events':>8s}")
    expected = [2 * i + 3 for i in range(8)]
    rows = {}
    for level in ("pin", "transaction", "register"):
        result, now, stall, events = run_level(level)
        rows[level] = (now, stall, events)
        ok = "PASS" if result == expected else "FAIL"
        print(f"{level:>12s} {ok:>10s} {now:10.0f} {stall:10.0f} "
              f"{events:8d}")
    print()
    pin, trans, reg = rows["pin"], rows["transaction"], rows["register"]
    print(f"pin-level events / register-level events: "
          f"{pin[2] / reg[2]:.1f}x")
    print(f"pin-level stall / register-level stall:   "
          f"{pin[1] / reg[1]:.1f}x")
    print()
    print("functional verification passes at every level; the levels")
    print("differ only in timing fidelity and simulation cost - the")
    print("trade-off Figure 3 arranges on its ladder.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
