#!/usr/bin/env python3
"""Figures 6 & 7: ASIP exploration and instruction-set metamorphosis.

Part 1 (Figure 6) mines custom-instruction candidates from three DSP
kernels, sweeps the functional-unit area budget, and *measures* each
design point by running the recompiled binaries on the extended R32 —
the area/speedup frontier of application-specific instruction-set
processor design.

Part 2 (Figure 7) makes the functional units field-programmable: a
two-phase workload (filtering, then CRC checking) lets a reconfigurable
processor re-select its instruction set per phase, against a static
processor that must compromise.

Run:  python examples/asip_exploration.py
"""

import argparse
import sys
from repro.asip.explore import explore_asip
from repro.asip.metamorphosis import best_static_plan, plan_metamorphosis
from repro.graph import kernels

COEFFS = [3, -5, 7, 2, 9, -1, 4, 6]


def part1_frontier() -> None:
    workloads = {
        "fir": (kernels.fir(8, coefficients=COEFFS), 5.0),
        "crc": (kernels.crc_step(), 10.0),
        "ewf": (kernels.elliptic_wave_filter(constant_coefficients=True),
                3.0),
    }
    weights = {name: w for name, (_g, w) in workloads.items()}
    print("=== Figure 6: instruction-subset selection frontier ===")
    print(f"{'budget':>8s} {'area':>8s} {'#instr':>7s} {'speedup':>8s}  "
          "instructions")
    for point in explore_asip(workloads, [0, 100, 300, 600, 1200, 2400]):
        print(f"{point.budget:8.0f} {point.custom_area:8.0f} "
              f"{len(point.instructions):7d} "
              f"{point.speedup(weights):8.3f}  "
              f"{','.join(point.instructions) or '-'}")
    print()
    print("every point was verified: the rewritten binaries produce")
    print("bit-identical outputs to the stock-ISA binaries.")
    print()


def part2_metamorphosis() -> None:
    phases = {
        "filter": {"fir": (kernels.fir(8, coefficients=COEFFS), 8.0)},
        "check": {"crc": (kernels.crc_step(), 8.0)},
    }
    fabric = 250.0
    print("=== Figure 7: reconfigurable special-purpose FUs ===")
    print(f"fabric area: {fabric:.0f} gates, "
          "phases: filter -> check")
    for iters in (1, 100, 10_000):
        morph = plan_metamorphosis(
            phases, fabric, reconfig_cycles=100_000,
            iterations_per_phase=iters,
        )
        static = best_static_plan(phases, fabric,
                                  iterations_per_phase=iters)
        winner = "reconfigurable" if morph.total_cycles < \
            static.total_cycles else "static"
        print(f"  {iters:6d} iterations/phase: "
              f"reconfig {morph.total_cycles:12.0f} cyc vs "
              f"static {static.total_cycles:12.0f} cyc -> {winner}")
    print()
    print("short phases: reconfiguration overhead dominates; long")
    print("phases amortize it - the adapt-on-the-fly trade-off of 4.4.")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    part1_frontier()
    part2_metamorphosis()
    return 0


if __name__ == "__main__":
    sys.exit(main())
