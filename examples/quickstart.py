#!/usr/bin/env python3
"""Quickstart: partition a multimedia pipeline and validate it.

This is the 60-second tour of the framework:

1. take a realistic workload (a JPEG-style encoder pipeline);
2. state the design problem (deadline, hardware budget, bus model);
3. run the co-design flow: six-factor partitioning followed by an
   *independent* message-level co-simulation of the partitioned system;
4. read the report.

Run:  python examples/quickstart.py
"""

import argparse
import sys
from repro.core.flow import CodesignFlow
from repro.estimate.communication import TIGHT
from repro.graph.kernels import jpeg_encoder_taskgraph
from repro.partition.evaluate import evaluate_partition


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    graph = jpeg_encoder_taskgraph()
    print("workload: JPEG-style encoder,",
          f"{len(graph)} tasks, {len(graph.edges)} dataflow edges")
    print(f"  all-software latency: {graph.total_time('sw'):.0f} ns")
    print(f"  all-hardware area:    {graph.total_area():.0f} gates "
          "(no sharing)")
    print()

    flow = CodesignFlow(
        graph,
        deadline_ns=90.0,        # performance requirement
        hw_area_budget=600.0,    # implementation-cost constraint
        comm=TIGHT,              # co-processor on the CPU bus
        algorithm="kl",
    )
    report = flow.run()

    print("chosen partition")
    print(f"  hardware: {sorted(report.partition.hw_tasks)}")
    print(f"  software: {sorted(report.partition.sw_tasks)}")
    print()
    print(report.summary())
    print()

    all_sw = evaluate_partition(flow.problem, [])
    speedup = all_sw.latency_ns / report.analytic_latency_ns
    print(f"speedup over all-software: {speedup:.2f}x")
    print("cost breakdown (weighted):")
    for factor, value in sorted(report.partition.breakdown.items()):
        print(f"  {factor:20s} {value:10.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
