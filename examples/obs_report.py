#!/usr/bin/env python3
"""Cross-layer observability report: spans, convergence, metrics.

Runs a partition-heuristic sweep (default) or a traced co-simulation
and emits the full `repro.obs` output set:

* ``obs_trace.json`` — a Chrome trace-event / Perfetto JSON timeline
  (load it at https://ui.perfetto.dev): sweep mode shows per-worker
  swimlanes with one span per cell and convergence instants; cosim
  mode shows the kernel's model-time records and bus occupancy spans;
* ``obs_metrics.json`` — the merged parent ``MetricsRegistry``
  snapshot (worker deltas folded in);
* stdout — an aligned-text flamegraph, the metrics summary table, and
  per-heuristic convergence tables.

The emitted trace is schema-validated (required keys ``ph``, ``ts``,
``pid``, ``tid``, ``name``) before the script exits; an invalid trace
is an error.  ``--smoke`` shrinks the grid for CI.

Run:  python examples/obs_report.py --out obs-report --workers 2
      python examples/obs_report.py --mode cosim --out obs-report
      python examples/obs_report.py --smoke
"""

import argparse
import json
import os
import sys
import tempfile

from repro.cosim.metrics import MetricsRegistry
from repro.graph.generators import COST_MODELS, GENERATORS
from repro.obs import (
    JsonlRecorder,
    ProgressProbe,
    SpanTracer,
    convergence_sink,
    read_samples,
    render_status,
    validate_trace_events,
)
from repro.partition import HEURISTICS
from repro.sweep import expand_grid, parse_seed_spec, run_sweep


def _axis(value, known, what):
    names = [v.strip() for v in value.split(",") if v.strip()]
    if value.strip() == "all":
        return sorted(known)
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown {what} {name!r}; known: {', '.join(sorted(known))}"
            )
    return names


def run_sweep_report(args, outdir):
    """Observed sweep: merged worker spans + convergence + metrics."""
    grid = expand_grid(
        generators=_axis(args.generators, GENERATORS, "generator"),
        n_tasks=[int(n) for n in args.n_tasks.split(",")],
        cost_models=_axis(args.cost_models, COST_MODELS, "cost model"),
        heuristics=_axis(args.heuristics, HEURISTICS, "heuristic"),
        seeds=parse_seed_spec(args.seeds),
    )
    spans = SpanTracer()
    probe = ProgressProbe(sink=convergence_sink(spans))
    metrics = MetricsRegistry()
    recorder = None
    if args.live:
        recorder = JsonlRecorder(os.path.join(outdir, "flight.jsonl"))
    print(f"observed sweep: {len(grid)} cells, workers={args.workers}")
    table = run_sweep(grid, workers=args.workers, span_tracer=spans,
                      probe=probe, metrics=metrics, recorder=recorder)
    print(f"  {table.stats.summary()}")
    if recorder is not None:
        recorder.close()
        samples = read_samples(recorder.path)
        print()
        print(render_status(samples, title="flight recorder"))
        print(f"  ({len(samples)} samples in {recorder.path})")

    trace_doc = spans.to_perfetto(indent=None)
    print()
    print(spans.flamegraph())
    print()
    print("convergence:")
    print(probe.summary())
    for name in probe.algorithms():
        print()
        print(probe.convergence_table(name, max_rows=args.table_rows))
    print()
    print(metrics.summary_table())
    return trace_doc, metrics


def run_cosim_report(args, outdir):
    """Traced co-simulation bridged onto the same timeline format."""
    from repro.cosim.bus import SystemBus
    from repro.cosim.kernel import Simulator
    from repro.cosim.pinlevel import run_until_complete
    from repro.cosim.trace import Tracer
    from repro.isa.assembler import assemble
    from repro.isa.cpu import Cpu, Memory
    from repro.isa.instructions import Isa
    from repro.isa.profiler import Profiler
    from repro.cosim.backplane import Backplane, TransactionAdapter

    program = """
            addi r4, r0, 0
            addi r5, r0, 8
        loop:
            add  r6, r4, r4
            addi r6, r6, 3
            sw   r6, 0x800(r4)
            lw   r7, 0x800(r4)
            addi r4, r4, 1
            bne  r4, r5, loop
            halt
    """
    store = [0] * 16

    def ram(offset, value, is_write):
        if is_write:
            store[offset] = value
            return 0
        return store[offset]

    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    isa = Isa()
    prog = assemble(program, isa)
    mem = Memory()
    mem.load_image(prog.image)
    cpu = Cpu(isa, mem)
    profiler = Profiler(cpu)
    bp = Backplane(sim, cpu, clock_period=10.0)
    bus = SystemBus(sim, arbitration_time=10.0, setup_time=10.0,
                    word_time=10.0)
    bus.attach_slave("ram", 0x800, 16, ram)
    bp.mount(0x800, 16, TransactionAdapter(bus, base=0x800))
    proc = bp.start()
    run_until_complete(sim, [proc], limit=1e7)

    # one registry for kernel metrics AND the R32 execution profile
    profiler.to_metrics(tracer.metrics)
    events = tracer.to_trace_events()
    trace_doc = json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}
    )
    print("traced co-simulation (transaction level):")
    print(tracer.summary())
    return trace_doc, tracer.metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Unified observability report: Perfetto trace, "
                    "flamegraph, convergence tables, metrics."
    )
    parser.add_argument("--mode", choices=("sweep", "cosim"),
                        default="sweep")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="output directory (default: a temp dir)")
    parser.add_argument("--generators", default="layered")
    parser.add_argument("--cost-models", default="default")
    parser.add_argument("--heuristics", default="all")
    parser.add_argument("--seeds", default="0-1")
    parser.add_argument("--n-tasks", default="8")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--table-rows", type=int, default=12,
                        help="max rows per convergence table (default 12)")
    parser.add_argument("--live", action="store_true",
                        help="arm the JSONL flight recorder during the "
                             "sweep and render the live-status frame "
                             "(sweep mode only)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fixed grid for CI smoke runs")
    args = parser.parse_args(argv)
    if args.live and args.mode != "sweep":
        parser.error("--live is sweep-mode only")

    if args.smoke:
        args.generators = "layered"
        args.cost_models = "default"
        args.heuristics = "greedy,annealing"
        args.seeds = "0-1"
        args.n_tasks = "6"
        args.workers = 2

    outdir = args.out or tempfile.mkdtemp(prefix="obs_report_")
    os.makedirs(outdir, exist_ok=True)

    if args.mode == "sweep":
        trace_doc, metrics = run_sweep_report(args, outdir)
    else:
        trace_doc, metrics = run_cosim_report(args, outdir)

    problems = validate_trace_events(trace_doc)
    if problems:
        print("\nTRACE SCHEMA INVALID:", file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        return 1

    trace_path = os.path.join(outdir, "obs_trace.json")
    with open(trace_path, "w", encoding="utf-8") as fh:
        fh.write(trace_doc)
    metrics_path = os.path.join(outdir, "obs_metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump(metrics.snapshot(), fh, indent=2)

    n_events = len(json.loads(trace_doc)["traceEvents"])
    print(f"\nwrote {trace_path} ({n_events} trace events, "
          f"schema valid) and {metrics_path}")
    print("load the trace at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
