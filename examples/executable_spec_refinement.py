#!/usr/bin/env python3
"""Executable-specification refinement (Gajski et al. [16]).

Start from what the paper calls the system's true starting point: a set
of *communicating processes* (Figure 1), before anything is hardware or
software.  Then:

1. **execute the specification** to validate functionality and find the
   communication structure (catching deadlocks before design begins);
2. **refine** it to a task graph with per-process characterizations;
3. **partition and co-synthesize** with the six-factor cost;
4. **co-simulate** the partitioned system and compare with the
   unpartitioned specification's behavior.

Run:  python examples/executable_spec_refinement.py
"""

import argparse
import sys
from repro.core.flow import CodesignFlow
from repro.spec import (
    ChannelSpec,
    Compute,
    Loop,
    ProcessSpec,
    Receive,
    Send,
    SystemSpec,
)


def packet_pipeline() -> SystemSpec:
    """A packet-processing system: capture -> filter -> checksum -> log."""
    return SystemSpec(
        name="packet_pipeline",
        processes=[
            ProcessSpec("capture", [
                Loop(4, [
                    Compute(8.0, "sample", hw_speedup=3.0, parallelism=2.0),
                    Send("raw", words=16.0),
                ]),
            ]),
            ProcessSpec("filter", [
                Loop(4, [
                    Receive("raw"),
                    Compute(30.0, "fir", hw_speedup=10.0, parallelism=12.0),
                    Send("clean", words=16.0),
                ]),
            ]),
            ProcessSpec("checksum", [
                Loop(4, [
                    Receive("clean"),
                    Compute(12.0, "crc", hw_speedup=2.0, parallelism=1.0),
                    Send("tagged", words=17.0),
                ]),
            ]),
            ProcessSpec("log", [
                Loop(4, [
                    Receive("tagged"),
                    Compute(6.0, "format", hw_speedup=1.5,
                            parallelism=1.0),
                ]),
            ]),
        ],
        channels=[
            ChannelSpec("raw", "capture", "filter"),
            ChannelSpec("clean", "filter", "checksum"),
            ChannelSpec("tagged", "checksum", "log"),
        ],
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast deterministic pass for CI")
    parser.parse_args(argv)
    spec = packet_pipeline()
    print(f"specification: {len(spec.processes)} processes, "
          f"{len(spec.channels)} channels")

    trace = spec.execute()
    print("\nstep 1 - execute the specification (functional validation):")
    print(f"  completes in {trace.latency_ns:.0f} ns "
          f"(untimed channels), {trace.total_messages} messages")

    graph = spec.to_task_graph()
    print("\nstep 2 - refine to a task graph:")
    for task in graph:
        print(f"  {task.name:9s} sw {task.sw_time:5.0f} ns, "
              f"hw {task.hw_time:5.1f} ns, "
              f"parallelism {task.parallelism:.1f}")

    print("\nstep 3+4 - partition, co-synthesize, co-simulate:")
    report = CodesignFlow(graph, deadline_ns=140.0,
                          hw_area_budget=800.0).run()
    print(f"  {report.summary()}")
    print(f"\nthe filter (parallel, 10x hardware speedup) belongs in "
          f"hardware: "
          f"{'yes' if 'filter' in report.partition.hw_tasks else 'no'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
